"""Generation of the per-line register access patterns (dynamic parts).

For each phase of the ring-buffer rotation the compiler emits one *line
pattern*: the exact cycle-by-cycle sequence of dynamic instruction parts
the sequencer streams while processing one line of a half-strip --

1. loads of the leading edge (or, on the first line, the whole
   multistencil) into the ring-buffer slots for this phase;
2. a short pipeline-fill gap so the last load lands before use;
3. the multiply-add block: occurrences processed left to right in pairs,
   two chained threads interleaved to fill the pipe, each result
   accumulating into the register that holds its occurrence's *tagged*
   (bottom-left) data element;
4. a drain/reversal gap: long enough for the last writeback to land
   before its store, and for the memory pipe to reverse direction;
5. stores of the ``w`` results, consecutively (the paper's point: do not
   interleave stores with computation).

One op is one machine cycle, so line-pattern length *is* the line's cycle
cost; the closed-form cost model in :mod:`repro.compiler.plan` and the
cycle-stepped FPU agree by construction (and tests assert it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..machine.isa import AbstractOp, LoadOp, MAOp, NopOp, StoreOp
from ..machine.params import MachineParams
from ..stencil.pattern import Coefficient, StencilPattern
from .allocation import RegisterAllocation


@dataclass(frozen=True)
class ExtraTerm:
    """A fused term reading offset (0, 0) of a *second* source array.

    The paper's compiler requires all shiftings in a statement to shift
    one variable; its stated future work is handling the Gordon Bell
    kernel's "ten terms as one stencil pattern" -- the tenth term reads a
    different time level.  An extra term streams its coefficient from
    memory like any other tap while its data element, loaded fresh each
    line (no reuse is possible across results), sits in a dedicated
    register.
    """

    source: str
    coeff: Coefficient


@dataclass(frozen=True)
class LinePattern:
    """One line's worth of dynamic instruction parts, one op per cycle."""

    phase: int
    full_load: bool
    ops: Tuple[AbstractOp, ...]
    num_loads: int
    num_ma: int
    num_stores: int
    drain_gap: int

    @property
    def cycles(self) -> int:
        return len(self.ops)

    @property
    def scratch_words(self) -> int:
        """Sequencer scratch data memory consumed by this pattern."""
        return len(self.ops)


def disassemble_ops(ops: Sequence[AbstractOp]) -> str:
    """Render a dynamic-part sequence one cycle per line.

    Load/store rows show the line-relative position and target register;
    multiply-add rows show thread, coefficient, data register, and the
    accumulator with first/last chain markers.
    """
    rows: List[str] = []
    for cycle, op in enumerate(ops):
        if isinstance(op, LoadOp):
            where = f"({op.row:+d},{op.col:+d})"
            buffer = f" [{op.buffer}]" if op.buffer else ""
            rows.append(f"{cycle:4d}  LOAD   r{op.reg:<2} <- src{where}{buffer}")
        elif isinstance(op, MAOp):
            marks = ("F" if op.first else "-") + ("L" if op.last else "-")
            rows.append(
                f"{cycle:4d}  MA t{op.thread} {marks}  "
                f"{op.coeff.describe()}[col {op.result_col}] * r{op.data_reg}"
                f" -> acc r{op.dest_reg}"
            )
        elif isinstance(op, StoreOp):
            rows.append(
                f"{cycle:4d}  STORE  r{op.reg:<2} -> result[col {op.result_col}]"
            )
        elif isinstance(op, NopOp):
            rows.append(f"{cycle:4d}  NOP    ({op.reason})")
        else:  # pragma: no cover - exhaustiveness guard
            rows.append(f"{cycle:4d}  ???    {op!r}")
    return "\n".join(rows)


def multiply_add_block(
    pattern: StencilPattern,
    alloc: RegisterAllocation,
    phase: int,
    extra_terms: Sequence[ExtraTerm] = (),
    extra_registers: Sequence[Sequence[int]] = (),
) -> Tuple[List[AbstractOp], Dict[int, int]]:
    """Build the multiply-add block for one line at the given phase.

    Returns the op list and a map ``occurrence -> offset of its last
    issue within the block`` (for drain-gap computation).

    Results are computed in pairs to exploit the WTL3164 timing: the two
    chained threads of a pair interleave on alternating cycles.  An odd
    trailing occurrence runs solo on thread 0, with dummy cycles on the
    odd slots (a single chain can only issue every other cycle).

    ``extra_terms`` appends fused second-source terms to every
    occurrence's chain; ``extra_registers[t][r]`` is the register
    holding extra term ``t``'s data element for occurrence ``r``.
    """
    width = alloc.multistencil.width
    taps = pattern.taps
    chain_length = len(taps) + len(extra_terms)
    ops: List[AbstractOp] = []
    last_issue: Dict[int, int] = {}

    def acc_register(occurrence: int) -> int:
        row, col = alloc.multistencil.accumulator_position(occurrence)
        return alloc.register_for(row, col, phase)

    def tap_op(occurrence: int, tap_index: int, thread: int) -> MAOp:
        if tap_index < len(taps):
            tap = taps[tap_index]
            if tap.is_constant_term:
                data_reg = alloc.unit_reg
            else:
                data_reg = alloc.register_for(
                    tap.dy, tap.dx + occurrence, phase
                )
            coeff = tap.coeff
        else:
            term_index = tap_index - len(taps)
            data_reg = extra_registers[term_index][occurrence]
            coeff = extra_terms[term_index].coeff
        return MAOp(
            coeff=coeff,
            data_reg=data_reg,
            dest_reg=acc_register(occurrence),
            thread=thread,
            first=(tap_index == 0),
            last=(tap_index == chain_length - 1),
            result_col=occurrence,
        )

    for pair in range(width // 2):
        left, right = 2 * pair, 2 * pair + 1
        for tap_index in range(chain_length):
            last_issue[left] = len(ops)
            ops.append(tap_op(left, tap_index, thread=0))
            last_issue[right] = len(ops)
            ops.append(tap_op(right, tap_index, thread=1))
    if width % 2:
        solo = width - 1
        for tap_index in range(chain_length):
            last_issue[solo] = len(ops)
            ops.append(tap_op(solo, tap_index, thread=0))
            if tap_index != chain_length - 1:
                ops.append(NopOp("solo-interleave"))
    return ops, last_issue


def drain_gap(
    ma_block_len: int,
    last_issue: Dict[int, int],
    params: MachineParams,
) -> int:
    """Stall cycles between the multiply-add block and the stores.

    Two constraints: the memory pipe reverses direction (coefficient
    reads -> result writes), costing ``pipe_reversal_penalty``; and the
    store of occurrence ``r`` (the ``r``-th store cycle) must not precede
    its chain's writeback, which lands ``writeback_latency`` cycles after
    its last issue.
    """
    gap = params.pipe_reversal_penalty
    for occurrence, issue_offset in last_issue.items():
        # The store of occurrence r executes at block-relative cycle
        # ma_block_len + gap + r * memory_access_cycles; the writeback
        # lands at the start of cycle issue_offset + writeback_latency,
        # so equality is safe.
        needed = (
            issue_offset
            + params.writeback_latency
            - ma_block_len
            - occurrence * params.memory_access_cycles
        )
        gap = max(gap, needed)
    return gap


def build_line_pattern(
    pattern: StencilPattern,
    alloc: RegisterAllocation,
    params: MachineParams,
    phase: int,
    *,
    full_load: bool,
    extra_terms: Sequence[ExtraTerm] = (),
    extra_registers: Sequence[Sequence[int]] = (),
) -> LinePattern:
    """Emit the complete dynamic-part sequence for one line."""
    ops: List[AbstractOp] = []
    transfer_nops = params.memory_access_cycles - 1

    def emit_load(load: LoadOp) -> None:
        """A register load occupies memory_access_cycles issue slots."""
        ops.append(load)
        ops.extend(NopOp("mem-transfer") for _ in range(transfer_nops))

    # 1. Loads.
    num_loads = 0
    if full_load:
        # First line of a half-strip: fill every ring slot in the span
        # (elements at gap rows are loaded too; they age into occupied
        # rows on later lines).
        for ring in alloc.rings:
            for row in range(ring.column.top, ring.column.bottom + 1):
                emit_load(
                    LoadOp(
                        reg=ring.register_for(row, phase),
                        row=row,
                        col=ring.column.x,
                    )
                )
                num_loads += 1
    else:
        for ring in alloc.rings:
            emit_load(
                LoadOp(
                    reg=ring.load_register(phase),
                    row=ring.column.top,
                    col=ring.column.x,
                )
            )
            num_loads += 1

    # 1b. Fused extra-term loads: one element per occurrence per term,
    # fresh every line (offset (0, 0) of a second source admits no
    # reuse across results or lines).
    for term, registers in zip(extra_terms, extra_registers):
        for occurrence, reg in enumerate(registers):
            emit_load(
                LoadOp(reg=reg, row=0, col=occurrence, buffer=term.source)
            )
            num_loads += 1

    # 2. Pipeline fill: the last load's value lands load_latency cycles
    # after issue; the first multiply-add may read it.
    ops.extend(NopOp("pipeline-fill") for _ in range(params.load_latency))

    # 3. Multiply-adds.
    ma_ops, last_issue = multiply_add_block(
        pattern, alloc, phase, extra_terms, extra_registers
    )
    ops.extend(ma_ops)

    # 4. Drain + reversal gap.
    gap = drain_gap(len(ma_ops), last_issue, params)
    ops.extend(NopOp("drain") for _ in range(gap))

    # 5. Stores, consecutive, left to right (each occupying
    # memory_access_cycles issue slots, like loads).
    width = alloc.multistencil.width
    for occurrence in range(width):
        row, col = alloc.multistencil.accumulator_position(occurrence)
        ops.append(
            StoreOp(
                reg=alloc.register_for(row, col, phase),
                result_col=occurrence,
            )
        )
        ops.extend(NopOp("mem-transfer") for _ in range(transfer_nops))

    return LinePattern(
        phase=phase,
        full_load=full_load,
        ops=tuple(ops),
        num_loads=num_loads,
        num_ma=len(ma_ops),
        num_stores=width,
        drain_gap=gap,
    )
