"""Fused multi-source stencils: the paper's stated future work.

Section 7: "The computation in the code that won the Gordon Bell prize
consisted of a nine-point cross stencil plus an additional term from two
time steps before the current one.  This tenth term was added in
separately.  (Future versions of the compiler should be able to handle
all ten terms as one stencil pattern.)"

This module is that future version.  A :class:`FusedStencil` extends a
compiled single-source stencil with *extra terms* of the form
``c * y`` where ``y`` is a different array read at offset (0, 0): each
extra term joins every result's chained multiply-add sequence (its
coefficient streaming from memory, its data element loaded fresh each
line into a dedicated register), eliminating the separate elementwise
pass and its memory traffic entirely.

Register budget: the base plan's ring buffers stay untouched; each
extra term needs ``width`` additional registers, so wide plans may
become infeasible -- the same give-and-take as everywhere else in this
compiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..machine.params import MachineParams
from ..stencil.multistencil import multistencil_widths
from ..stencil.pattern import CoeffKind, Coefficient, StencilPattern
from .allocation import AllocationError, allocate
from .codegen import ExtraTerm, build_line_pattern
from .plan import StencilCompileError, WidthPlan


class FusedPattern:
    """A stencil pattern plus fused second-source terms.

    Quacks like :class:`~repro.stencil.pattern.StencilPattern` where the
    run-time library needs it (geometry and halo decisions delegate to
    the base pattern -- extra terms read offset (0, 0) and never widen
    the borders) while extending the work accounting and name lists.
    """

    def __init__(
        self, base: StencilPattern, extra_terms: Sequence[ExtraTerm]
    ) -> None:
        if not extra_terms:
            raise ValueError("a fused pattern needs at least one extra term")
        sources = {term.source for term in extra_terms}
        if base.source in sources:
            raise ValueError(
                f"extra term reads the primary source {base.source}; "
                "express it as an ordinary tap instead"
            )
        self.base = base
        self.extra_terms: Tuple[ExtraTerm, ...] = tuple(extra_terms)
        self.name = f"{base.name or 'stencil'}+{len(extra_terms)}fused"

    # Geometry and boundary behaviour delegate to the base pattern.
    def __getattr__(self, attribute):
        return getattr(self.base, attribute)

    @property
    def taps(self):
        return self.base.taps

    def useful_flops_per_point(self) -> int:
        """Base flops plus a multiply and an add per extra term."""
        return self.base.useful_flops_per_point() + 2 * len(self.extra_terms)

    def issued_multiply_adds_per_point(self) -> int:
        return self.base.issued_multiply_adds_per_point() + len(
            self.extra_terms
        )

    def coefficient_names(self) -> Tuple[str, ...]:
        names = list(self.base.coefficient_names())
        for term in self.extra_terms:
            if term.coeff.kind is CoeffKind.ARRAY and term.coeff.name not in names:
                names.append(term.coeff.name)
        return tuple(names)

    def extra_source_names(self) -> Tuple[str, ...]:
        names: List[str] = []
        for term in self.extra_terms:
            if term.source not in names:
                names.append(term.source)
        return tuple(names)

    def describe(self) -> str:
        extras = " + ".join(
            f"{term.coeff.describe()} * {term.source}[+0,+0]"
            for term in self.extra_terms
        )
        return f"{self.base.describe()} + {extras}"


class FusedStencil:
    """Compiled form of a fused pattern; mirrors CompiledStencil's API."""

    def __init__(
        self,
        pattern: FusedPattern,
        params: MachineParams,
        plans: Dict[int, WidthPlan],
        rejections: Dict[int, str],
    ) -> None:
        if not plans:
            raise StencilCompileError(
                f"no multistencil width of {pattern.name} fits once the "
                f"extra-term registers are reserved: {rejections}"
            )
        self.pattern = pattern
        self.params = params
        self.plans = dict(sorted(plans.items(), reverse=True))
        self.rejections = dict(rejections)

    @property
    def widths(self) -> Tuple[int, ...]:
        return tuple(self.plans)

    @property
    def max_width(self) -> int:
        return max(self.plans)

    def plan_for(self, remaining_width: int) -> WidthPlan:
        for width, plan in self.plans.items():
            if width <= remaining_width:
                return plan
        raise StencilCompileError(
            f"no fused plan fits a remaining width of {remaining_width}"
        )

    def strip_widths(self, axis_length: int) -> List[int]:
        widths: List[int] = []
        remaining = axis_length
        while remaining > 0:
            plan = self.plan_for(remaining)
            widths.append(plan.width)
            remaining -= plan.width
        return widths

    def scalar_coefficient_values(self) -> Tuple[float, ...]:
        # Distinct by representation: -0.0 and 0.0 compare equal but
        # name different constant pages.
        values: Dict[str, float] = {}
        for tap in self.pattern.base.taps:
            if tap.coeff.kind is CoeffKind.SCALAR:
                value = float(tap.coeff.value)
                values.setdefault(repr(value), value)
        for term in self.pattern.extra_terms:
            if term.coeff.kind is CoeffKind.SCALAR:
                value = float(term.coeff.value)
                values.setdefault(repr(value), value)
        return tuple(values.values())

    def describe(self) -> str:
        lines = [f"fused {self.pattern.describe()}"]
        lines += [f"  {plan.describe()}" for plan in self.plans.values()]
        lines += [
            f"  width {width} rejected: {reason}"
            for width, reason in self.rejections.items()
        ]
        return "\n".join(lines)


def fuse(
    base: StencilPattern,
    extra_terms: Sequence[ExtraTerm],
    params: Optional[MachineParams] = None,
    widths: Sequence[int] = multistencil_widths(),
) -> FusedStencil:
    """Compile a base pattern with fused extra terms.

    For each candidate width, the base ring-buffer allocation must leave
    ``width * len(extra_terms)`` registers free for the extra data
    elements; otherwise the width is rejected.
    """
    params = params or MachineParams()
    pattern = FusedPattern(base, extra_terms)
    plans: Dict[int, WidthPlan] = {}
    rejections: Dict[int, str] = {}
    for width in widths:
        try:
            allocation = allocate(base, width, params)
        except AllocationError as exc:
            rejections[width] = str(exc)
            continue
        first_free = 1 + (1 if allocation.unit_reg is not None else 0)
        next_free = first_free + allocation.data_registers
        needed = width * len(extra_terms)
        if next_free + needed > params.registers:
            rejections[width] = (
                f"extra terms need {needed} more registers; only "
                f"{params.registers - next_free} remain after the ring "
                "buffers"
            )
            continue
        extra_registers = tuple(
            tuple(
                next_free + term_index * width + occurrence
                for occurrence in range(width)
            )
            for term_index in range(len(extra_terms))
        )
        prologue = build_line_pattern(
            base,
            allocation,
            params,
            phase=0,
            full_load=True,
            extra_terms=extra_terms,
            extra_registers=extra_registers,
        )
        steady = tuple(
            build_line_pattern(
                base,
                allocation,
                params,
                phase=phase,
                full_load=False,
                extra_terms=extra_terms,
                extra_registers=extra_registers,
            )
            for phase in range(allocation.unroll)
        )
        plan = WidthPlan(
            width=width,
            allocation=allocation,
            prologue=prologue,
            steady=steady,
        )
        if plan.scratch_words > params.scratch_memory_words:
            rejections[width] = (
                f"unrolled fused patterns need {plan.scratch_words} scratch "
                f"words; only {params.scratch_memory_words} available"
            )
            continue
        plans[width] = plan
    return FusedStencil(pattern, params, plans, rejections)
