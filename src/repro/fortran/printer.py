"""Emit Fortran source from stencil patterns (the recognizer, inverted).

Given a :class:`~repro.stencil.pattern.StencilPattern`, produce the
canonical Fortran 90 statement (and optionally the isolated subroutine
of the paper's second version) that the recognizer maps back to the
same pattern -- a round trip the property tests pin down.  Useful for
showing users what a programmatically built pattern means, and for
generating test decks.
"""

from __future__ import annotations

from typing import List, Optional

from ..stencil.offsets import BoundaryMode
from ..stencil.pattern import CoeffKind, StencilPattern, Tap


def _shift_reference(
    tap: Tap, pattern: StencilPattern
) -> str:
    """Render the data reference of one tap as (possibly nested) shifts.

    Emits the paper's positional convention: ``CSHIFT(x, DIM, SHIFT)``,
    innermost dimension 1 first.  EOSHIFT dimensions carry the pattern's
    fill value when it is non-zero.
    """
    reference = pattern.source
    dims = (
        (pattern.plane_dims[0], tap.dy),
        (pattern.plane_dims[1], tap.dx),
    )
    for dim, amount in dims:
        if amount == 0:
            continue
        mode = pattern.boundary.get(dim, BoundaryMode.CIRCULAR)
        if mode is BoundaryMode.CIRCULAR:
            reference = f"CSHIFT({reference}, {dim}, {amount:+d})"
        elif pattern.fill_value:
            reference = (
                f"EOSHIFT({reference}, {dim}, {amount:+d}, "
                f"{_literal(pattern.fill_value)})"
            )
        else:
            reference = f"EOSHIFT({reference}, {dim}, {amount:+d})"
    return reference


def _literal(value: float) -> str:
    """A Fortran REAL literal round-trippable by the lexer."""
    text = repr(float(value))
    if "e" in text or "E" in text or "." in text:
        return text
    return text + ".0"


def _term(tap: Tap, pattern: StencilPattern) -> str:
    if tap.is_constant_term:
        if tap.coeff.kind is CoeffKind.ARRAY:
            return tap.coeff.name
        return _literal(tap.coeff.value)
    reference = _shift_reference(tap, pattern)
    if tap.coeff.kind is CoeffKind.ARRAY:
        return f"{tap.coeff.name} * {reference}"
    if tap.coeff.kind is CoeffKind.SCALAR:
        return f"{_literal(tap.coeff.value)} * {reference}"
    return reference


def emit_statement(pattern: StencilPattern, *, width: int = 0) -> str:
    """The canonical assignment statement for a pattern.

    With ``width`` > 0, terms after the first are broken onto continued
    lines (``&``) like the paper's listings.
    """
    terms = [_term(tap, pattern) for tap in pattern.taps]
    if not width:
        return f"{pattern.result} = " + " + ".join(terms)
    lines = [f"{pattern.result} = {terms[0]}"]
    for term in terms[1:]:
        lines[-1] += " &"
        lines.append(f"  + {term}")
    return "\n".join(lines)


def emit_subroutine(
    pattern: StencilPattern, name: Optional[str] = None
) -> str:
    """The isolated stencil subroutine of the paper's second version."""
    subroutine = (name or pattern.name or "stencil").upper()
    arguments: List[str] = [pattern.result, pattern.source]
    arguments += [n for n in pattern.coefficient_names()]
    header = f"SUBROUTINE {subroutine} ({', '.join(arguments)})"
    declaration = f"REAL, ARRAY(:, :) :: {', '.join(arguments)}"
    body = emit_statement(pattern, width=60)
    return "\n".join([header, declaration, body, "END"]) + "\n"
