"""Source-located diagnostics for the Fortran front end.

The paper's third compiler version plans user feedback: when a statement
carries a stencil directive but cannot be compiled by the convolution
module (for lack of registers, say), the compiler warns instead of
silently falling back.  These classes carry the location and reason for
that feedback.

Diagnostics carry an optional ``RS###`` error code (the catalogue lives
in ``docs/INTERNALS.md`` section 10) and an optional :class:`Span`, so
the linter and the exception paths render through one caret formatter:

    <statement>:1:10: error[RS301]: division is not part of the ...
      R = X / C1
              ^~
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class SourceLocation:
    """A position in the Fortran source text (1-based line and column)."""

    line: int
    column: int
    filename: str = "<fortran>"

    def describe(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


@dataclass(frozen=True)
class Span:
    """A half-open source region ``[start, end)`` (end column exclusive).

    Both ends carry full locations so multi-line spans (continuation
    statements) are representable; the caret renderer underlines the
    portion on the start line.
    """

    start: SourceLocation
    end: SourceLocation

    def describe(self) -> str:
        return self.start.describe()


def span_union(a: Optional[Span], b: Optional[Span]) -> Optional[Span]:
    """The smallest span covering both operands (None-tolerant)."""
    if a is None:
        return b
    if b is None:
        return a
    start = min(a.start, b.start, key=lambda loc: (loc.line, loc.column))
    end = max(a.end, b.end, key=lambda loc: (loc.line, loc.column))
    return Span(start=start, end=end)


class FortranError(Exception):
    """Base class for all front-end errors.

    Every error carries a :class:`SourceLocation` (derived from the span
    when only a span is given) and an ``RS###`` code, so the whole
    front end renders through the linter's diagnostic formatter.
    """

    #: Default diagnostic code for this error class.
    CODE: Optional[str] = None

    def __init__(
        self,
        message: str,
        location: Optional[SourceLocation] = None,
        *,
        span: Optional[Span] = None,
        code: Optional[str] = None,
    ):
        if location is None and span is not None:
            location = span.start
        if span is None and location is not None:
            span = Span(start=location, end=location)
        self.location = location
        self.span = span
        self.message = message
        self.code = code if code is not None else type(self).CODE
        prefix = f"{location.describe()}: " if location else ""
        super().__init__(prefix + message)

    def to_diagnostic(self) -> "Diagnostic":
        """Render this error as a linter diagnostic."""
        return Diagnostic(
            "error", self.message, self.location, code=self.code, span=self.span
        )


class LexError(FortranError):
    """The tokenizer met a character sequence it cannot tokenize."""

    CODE = "RS001"


class ParseError(FortranError):
    """The parser met a token sequence outside the supported subset."""

    CODE = "RS002"


class NotAStencilError(FortranError):
    """An assignment statement does not fit the convolution compiler's form.

    The statement is legal Fortran (the stock compiler would handle it);
    it simply is not a sum of products of shifted references of a single
    variable, or violates a resource constraint.
    """

    CODE = "RS301"


#: Severity ranking used by gates that fail on "diagnostic >= error".
SEVERITY_ORDER = {"note": 0, "warning": 1, "error": 2}


@dataclass
class Diagnostic:
    """One piece of feedback about a candidate stencil statement."""

    severity: str  # "error" | "warning" | "note"
    message: str
    location: Optional[SourceLocation] = None
    code: Optional[str] = None  # RS### catalogue entry
    span: Optional[Span] = None  # underlined region (defaults to location)
    fixit: Optional[str] = None  # suggested replacement, if any

    def describe(self) -> str:
        where = f"{self.location.describe()}: " if self.location else ""
        tag = f"{self.severity}[{self.code}]" if self.code else self.severity
        return f"{where}{tag}: {self.message}"


def has_errors(diagnostics: Sequence[Diagnostic]) -> bool:
    """Whether any diagnostic meets the error severity gate."""
    return any(
        SEVERITY_ORDER.get(d.severity, 2) >= SEVERITY_ORDER["error"]
        for d in diagnostics
    )


def render_diagnostic(
    diagnostic: Diagnostic, source_lines: Optional[Sequence[str]] = None
) -> str:
    """Render one diagnostic, caret-underlined when the source is given.

    The caret line marks the start column with ``^`` and extends with
    ``~`` across the span's portion of the start line -- the classic
    compiler-diagnostic shape.  A trailing ``fix-it:`` line carries the
    suggested rewrite when one exists.
    """
    lines = [diagnostic.describe()]
    location = diagnostic.location
    if (
        source_lines is not None
        and location is not None
        and 1 <= location.line <= len(source_lines)
    ):
        text = source_lines[location.line - 1]
        column = max(1, location.column)
        width = 1
        span = diagnostic.span
        if span is not None and span.start.line == location.line:
            column = max(1, span.start.column)
            if span.end.line == span.start.line:
                width = max(1, span.end.column - span.start.column)
            else:
                width = max(1, len(text) - span.start.column + 1)
        width = min(width, max(1, len(text) - column + 1))
        lines.append("  " + text)
        lines.append("  " + " " * (column - 1) + "^" + "~" * (width - 1))
    if diagnostic.fixit:
        lines.append(f"  fix-it: {diagnostic.fixit}")
    return "\n".join(lines)


def render_diagnostics(
    diagnostics: Sequence[Diagnostic], source: Optional[str] = None
) -> str:
    """Render a diagnostic list through the shared caret formatter."""
    source_lines = source.splitlines() if source is not None else None
    return "\n".join(
        render_diagnostic(d, source_lines) for d in diagnostics
    )


@dataclass
class DiagnosticSink:
    """Collects warnings emitted while scanning subroutines for stencils."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def error(
        self,
        message: str,
        location: Optional[SourceLocation] = None,
        *,
        code: Optional[str] = None,
        span: Optional[Span] = None,
        fixit: Optional[str] = None,
    ) -> None:
        self.diagnostics.append(
            Diagnostic("error", message, location, code=code, span=span, fixit=fixit)
        )

    def warn(
        self,
        message: str,
        location: Optional[SourceLocation] = None,
        *,
        code: Optional[str] = None,
        span: Optional[Span] = None,
        fixit: Optional[str] = None,
    ) -> None:
        self.diagnostics.append(
            Diagnostic("warning", message, location, code=code, span=span, fixit=fixit)
        )

    def note(
        self,
        message: str,
        location: Optional[SourceLocation] = None,
        *,
        code: Optional[str] = None,
        span: Optional[Span] = None,
    ) -> None:
        self.diagnostics.append(
            Diagnostic("note", message, location, code=code, span=span)
        )

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    def describe(self) -> str:
        return "\n".join(d.describe() for d in self.diagnostics)
