"""Source-located diagnostics for the Fortran front end.

The paper's third compiler version plans user feedback: when a statement
carries a stencil directive but cannot be compiled by the convolution
module (for lack of registers, say), the compiler warns instead of
silently falling back.  These classes carry the location and reason for
that feedback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class SourceLocation:
    """A position in the Fortran source text (1-based line and column)."""

    line: int
    column: int
    filename: str = "<fortran>"

    def describe(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class FortranError(Exception):
    """Base class for all front-end errors."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.location = location
        self.message = message
        prefix = f"{location.describe()}: " if location else ""
        super().__init__(prefix + message)


class LexError(FortranError):
    """The tokenizer met a character sequence it cannot tokenize."""


class ParseError(FortranError):
    """The parser met a token sequence outside the supported subset."""


class NotAStencilError(FortranError):
    """An assignment statement does not fit the convolution compiler's form.

    The statement is legal Fortran (the stock compiler would handle it);
    it simply is not a sum of products of shifted references of a single
    variable, or violates a resource constraint.
    """


@dataclass
class Diagnostic:
    """One piece of feedback about a candidate stencil statement."""

    severity: str  # "warning" | "note"
    message: str
    location: Optional[SourceLocation] = None

    def describe(self) -> str:
        where = f"{self.location.describe()}: " if self.location else ""
        return f"{where}{self.severity}: {self.message}"


@dataclass
class DiagnosticSink:
    """Collects warnings emitted while scanning subroutines for stencils."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def warn(self, message: str, location: Optional[SourceLocation] = None) -> None:
        self.diagnostics.append(Diagnostic("warning", message, location))

    def note(self, message: str, location: Optional[SourceLocation] = None) -> None:
        self.diagnostics.append(Diagnostic("note", message, location))

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def describe(self) -> str:
        return "\n".join(d.describe() for d in self.diagnostics)
