"""Recognize stencil-form array assignments and build their patterns.

The Connection Machine Convolution Compiler processes single arithmetic
assignment statements of the form ``R = T + T + ... + T`` where each term
is ``c * s(x)``, ``s(x) * c``, ``s(x)``, or ``c``; every ``s(x)`` is a
CSHIFT/EOSHIFT chain, and all shiftings within a statement must shift the
same variable name (paper section 2).

Note one quirk faithfully reproduced from the paper: its positional call
form ``CSHIFT(X, k, m)`` means ``DIM=k, SHIFT=m`` -- the *opposite* order
from standard Fortran 90's ``CSHIFT(ARRAY, SHIFT, DIM)``.  All the paper's
examples (e.g. ``CSHIFT(X, 2, +1)`` for the East neighbor) use this
convention, so we follow it; the keyword forms are unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..stencil.offsets import (
    BoundaryMode,
    MixedBoundaryError,
    Shift,
    ShiftKind,
    compose_boundary_modes,
    compose_offsets,
)
from ..stencil.pattern import Coefficient, CoeffKind, StencilPattern, Tap
from .ast_nodes import (
    Assignment,
    BinOp,
    Call,
    Expr,
    IntLit,
    Name,
    RealLit,
    Subroutine,
    UnaryOp,
)
from .errors import DiagnosticSink, NotAStencilError, SourceLocation, Span

_SHIFT_FUNCS = {"CSHIFT": ShiftKind.CSHIFT, "EOSHIFT": ShiftKind.EOSHIFT}


# ----------------------------------------------------------------------
# Term flattening
# ----------------------------------------------------------------------


def _flatten_sum(expr: Expr, sign: int = +1) -> List[Tuple[int, Expr]]:
    """Flatten an expression over +/- into signed terms, in source order."""
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        right_sign = sign if expr.op == "+" else -sign
        return _flatten_sum(expr.left, sign) + _flatten_sum(expr.right, right_sign)
    if isinstance(expr, UnaryOp) and expr.op in ("+", "-"):
        inner_sign = sign if expr.op == "+" else -sign
        return _flatten_sum(expr.operand, inner_sign)
    return [(sign, expr)]


def _flatten_product(expr: Expr) -> List[Expr]:
    """Flatten a term over ``*`` into factors, in source order."""
    if isinstance(expr, BinOp) and expr.op == "*":
        return _flatten_product(expr.left) + _flatten_product(expr.right)
    if isinstance(expr, BinOp) and expr.op == "/":
        raise NotAStencilError(
            "division is not part of the sum-of-products stencil form",
            expr.location,
            span=expr.span,
        )
    return [expr]


# ----------------------------------------------------------------------
# Factor classification
# ----------------------------------------------------------------------


@dataclass
class _ShiftChain:
    root: str
    shifts: Tuple[Shift, ...]  # innermost first
    location: SourceLocation
    span: Optional[Span] = None


def _const_int(expr: Expr, what: str) -> int:
    """Evaluate a compile-time integer (allowing a unary sign)."""
    sign = 1
    while isinstance(expr, UnaryOp) and expr.op in ("+", "-"):
        if expr.op == "-":
            sign = -sign
        expr = expr.operand
    if isinstance(expr, IntLit):
        return sign * expr.value
    raise NotAStencilError(
        f"{what} must be a compile-time integer constant, "
        f"found {expr.describe()}",
        expr.location,
        span=expr.span,
    )


def _const_real(expr: Expr, what: str) -> float:
    sign = 1.0
    while isinstance(expr, UnaryOp) and expr.op in ("+", "-"):
        if expr.op == "-":
            sign = -sign
        expr = expr.operand
    if isinstance(expr, (IntLit, RealLit)):
        return sign * float(expr.value)
    raise NotAStencilError(
        f"{what} must be a compile-time constant, found {expr.describe()}",
        expr.location,
        span=expr.span,
    )


def _unwrap_shift_call(call: Call) -> Tuple[Expr, Shift]:
    """Decompose one CSHIFT/EOSHIFT call into (inner expression, Shift)."""
    kind = _SHIFT_FUNCS[call.func]
    if not call.args:
        raise NotAStencilError(
            f"{call.func} needs an array argument", call.location, span=call.span
        )
    inner = call.args[0]
    positional = list(call.args[1:])
    kwargs = dict(call.kwargs)
    dim: Optional[int] = None
    amount: Optional[int] = None
    boundary = 0.0
    # Paper convention: positional extras are (dim, shift).
    if positional:
        dim = _const_int(positional[0], f"{call.func} DIM")
    if len(positional) >= 2:
        amount = _const_int(positional[1], f"{call.func} SHIFT")
    if len(positional) >= 3:
        if kind is not ShiftKind.EOSHIFT:
            raise NotAStencilError(
                f"too many positional arguments to {call.func}",
                call.location,
                span=call.span,
            )
        boundary = _const_real(positional[2], "EOSHIFT BOUNDARY")
    for key, value in kwargs.items():
        if key == "DIM":
            dim = _const_int(value, f"{call.func} DIM")
        elif key == "SHIFT":
            amount = _const_int(value, f"{call.func} SHIFT")
        elif key == "BOUNDARY" and kind is ShiftKind.EOSHIFT:
            boundary = _const_real(value, "EOSHIFT BOUNDARY")
        else:
            raise NotAStencilError(
                f"unknown keyword {key}= in {call.func}",
                call.location,
                span=call.span,
            )
    if dim is None or amount is None:
        raise NotAStencilError(
            f"{call.func} requires both DIM and SHIFT",
            call.location,
            span=call.span,
        )
    return inner, Shift(kind=kind, dim=dim, amount=amount, boundary=boundary)


def _try_shift_chain(expr: Expr) -> Optional[_ShiftChain]:
    """If ``expr`` is a CSHIFT/EOSHIFT chain over a name, decompose it."""
    shifts: List[Shift] = []
    location = expr.location
    span = expr.span
    while isinstance(expr, Call) and expr.func in _SHIFT_FUNCS:
        expr, shift = _unwrap_shift_call(expr)
        shifts.append(shift)  # outermost collected first...
    if not shifts:
        return None
    if not isinstance(expr, Name):
        raise NotAStencilError(
            "the shifted expression must bottom out in a plain array name, "
            f"found {expr.describe()}",
            expr.location,
            span=expr.span,
        )
    shifts.reverse()  # ...store innermost first
    return _ShiftChain(
        root=expr.ident, shifts=tuple(shifts), location=location, span=span
    )


@dataclass
class _Term:
    """A classified additive term, before tap construction."""

    sign: int
    chain: Optional[_ShiftChain]  # the data reference, if any
    coeff_name: Optional[str]  # array coefficient, if any
    scalar: float  # folded scalar literal factors
    has_scalar: bool
    bare_name: Optional[str]  # an unshifted Name factor (source or coeff)
    location: SourceLocation
    span: Optional[Span] = None


def _classify_term(sign: int, expr: Expr) -> _Term:
    factors = _flatten_product(expr)
    chain: Optional[_ShiftChain] = None
    names: List[Name] = []
    scalar = 1.0
    has_scalar = False
    for factor in factors:
        # Allow signs buried inside the product, e.g. C1 * (-CSHIFT(...)).
        inner = factor
        while isinstance(inner, UnaryOp) and inner.op in ("+", "-"):
            if inner.op == "-":
                sign = -sign
            inner = inner.operand
        maybe_chain = None
        if isinstance(inner, Call):
            if inner.func in _SHIFT_FUNCS:
                maybe_chain = _try_shift_chain(inner)
            else:
                raise NotAStencilError(
                    f"call to {inner.func} is not a shifting intrinsic",
                    inner.location,
                    span=inner.span,
                )
        if maybe_chain is not None:
            if chain is not None:
                raise NotAStencilError(
                    "a term may contain at most one shifted data reference",
                    inner.location,
                    span=inner.span,
                )
            chain = maybe_chain
        elif isinstance(inner, Name):
            names.append(inner)
        elif isinstance(inner, (IntLit, RealLit)):
            scalar *= float(inner.value)
            has_scalar = True
        else:
            raise NotAStencilError(
                f"factor {inner.describe()} is outside the stencil form",
                inner.location,
                span=inner.span,
            )
    if len(names) > (1 if chain is not None else 2):
        raise NotAStencilError(
            "a term may multiply at most one coefficient by one data "
            "reference (sum-of-products form)",
            expr.location,
            span=expr.span,
        )
    coeff_name: Optional[str] = None
    bare_name: Optional[str] = None
    if chain is not None:
        if names:
            coeff_name = names[0].ident
    else:
        if len(names) == 2:
            # name * name with no shifts: one is the source, decided later.
            return _Term(
                sign=sign,
                chain=None,
                coeff_name=names[0].ident,
                scalar=scalar,
                has_scalar=has_scalar,
                bare_name=names[1].ident,
                location=expr.location,
                span=expr.span,
            )
        if len(names) == 1:
            bare_name = names[0].ident
    return _Term(
        sign=sign,
        chain=chain,
        coeff_name=coeff_name,
        scalar=scalar,
        has_scalar=has_scalar,
        bare_name=bare_name,
        location=expr.location,
        span=expr.span,
    )


# ----------------------------------------------------------------------
# Recognition proper
# ----------------------------------------------------------------------


def _determine_source(terms: Sequence[_Term], location: SourceLocation) -> str:
    roots = {term.chain.root for term in terms if term.chain is not None}
    if len(roots) > 1:
        raise NotAStencilError(
            "all shiftings within a statement must shift the same variable; "
            f"found {', '.join(sorted(roots))}",
            location,
        )
    if roots:
        return roots.pop()
    # No shift intrinsics anywhere.  The statement can still be a stencil
    # (all taps at the center) if one name plays the data role in every
    # term; that name must appear in every term that has two names.
    candidates: Optional[set] = None
    for term in terms:
        term_names = {n for n in (term.coeff_name, term.bare_name) if n}
        if len(term_names) == 2:
            candidates = (
                term_names if candidates is None else candidates & term_names
            )
    if candidates is not None and len(candidates) == 1:
        return candidates.pop()
    raise NotAStencilError(
        "cannot identify the shifted variable: the statement contains no "
        "CSHIFT/EOSHIFT and no unambiguous data reference",
        location,
    )


def _plane_dims(
    dims: Sequence[int], location: SourceLocation
) -> Tuple[int, int]:
    unique = sorted(set(dims))
    if len(unique) > 2:
        raise NotAStencilError(
            f"shifts along {len(unique)} distinct dimensions; the stencil "
            "plane is two-dimensional (outer dimensions are looped by the "
            "run-time library)",
            location,
        )
    if not unique:
        return (1, 2)
    if len(unique) == 1:
        dim = unique[0]
        other = 1 if dim != 1 else 2
        return tuple(sorted((dim, other)))  # type: ignore[return-value]
    return (unique[0], unique[1])


def recognize_assignment(
    assignment: Assignment,
    *,
    name: Optional[str] = None,
    ranks: Optional[Dict[str, int]] = None,
) -> StencilPattern:
    """Build a :class:`StencilPattern` from an array assignment.

    Args:
        assignment: the parsed statement.
        name: optional label for the resulting pattern.
        ranks: declared ranks by array name, used for validity checks when
            the statement came from a subroutine with declarations.

    Raises:
        NotAStencilError: the statement is outside the convolution
            compiler's form; the message explains why, in the spirit of
            the directive feedback the paper plans.
    """
    signed_terms = _flatten_sum(assignment.expr)
    terms = [_classify_term(sign, expr) for sign, expr in signed_terms]
    source = _determine_source(terms, assignment.location)
    if assignment.target == source:
        raise NotAStencilError(
            f"the result array {assignment.target} may not also be the "
            "shifted source (the computation reads neighbors after the "
            "assignment would have overwritten them)",
            assignment.location,
            span=assignment.span,
        )

    all_shifts = [
        shift
        for term in terms
        if term.chain is not None
        for shift in term.chain.shifts
    ]
    plane = _plane_dims([s.dim for s in all_shifts], assignment.location)

    taps: List[Tap] = []
    boundary: Dict[int, BoundaryMode] = {}
    fill_value: Optional[float] = None
    for term in terms:
        tap = _build_tap(term, source, plane)
        taps.append(tap)
        if term.chain is not None:
            try:
                modes = compose_boundary_modes(term.chain.shifts)
            except MixedBoundaryError as exc:
                raise NotAStencilError(
                    str(exc), term.location, span=term.span, code="RS102"
                ) from exc
            for dim, mode in modes.items():
                previous = boundary.get(dim)
                if previous is not None and previous is not mode:
                    raise NotAStencilError(
                        f"terms disagree on the boundary treatment of "
                        f"dimension {dim} (CSHIFT vs EOSHIFT); the compiled "
                        "halo exchange needs one mode per dimension",
                        term.location,
                        span=term.span,
                        code="RS102",
                    )
                boundary[dim] = mode
            for shift in term.chain.shifts:
                if shift.kind is ShiftKind.EOSHIFT:
                    if fill_value is not None and fill_value != shift.boundary:
                        raise NotAStencilError(
                            "EOSHIFT terms disagree on the boundary fill "
                            f"value ({fill_value} vs {shift.boundary})",
                            term.location,
                            span=term.span,
                        )
                    fill_value = shift.boundary
            _check_eoshift_monotone(term)

    taps = _fold_duplicates(taps, assignment.location)
    _check_ranks(assignment, source, taps, plane, ranks)
    return StencilPattern(
        taps,
        result=assignment.target,
        source=source,
        plane_dims=plane,
        boundary=boundary,
        fill_value=fill_value if fill_value is not None else 0.0,
        name=name or assignment.target.lower(),
    )


def _check_eoshift_monotone(term: _Term) -> None:
    """Reject EOSHIFT chains that destroy more data than their net offset.

    ``EOSHIFT(EOSHIFT(X,1,+1),1,-1)`` has net offset zero but blanks two
    rows; it is not expressible as a single stencil tap.  Requiring all
    EOSHIFT amounts along one dimension to share a sign keeps the chain
    equivalent to one shift by the net offset.
    """
    signs: Dict[int, int] = {}
    for shift in term.chain.shifts:
        if shift.kind is not ShiftKind.EOSHIFT or shift.amount == 0:
            continue
        sign = 1 if shift.amount > 0 else -1
        previous = signs.get(shift.dim)
        if previous is not None and previous != sign:
            raise NotAStencilError(
                f"EOSHIFT chain along dimension {shift.dim} mixes shift "
                "directions; the blanked region exceeds the net offset and "
                "cannot be expressed as a stencil tap",
                term.location,
                span=term.span,
            )
        signs[shift.dim] = sign


def _build_tap(term: _Term, source: str, plane: Tuple[int, int]) -> Tap:
    scalar = term.scalar if term.has_scalar else None
    if term.sign < 0:
        # Sums of products only: a negated term is representable only when
        # its coefficient is a compile-time scalar we can negate.
        if term.coeff_name is not None:
            raise NotAStencilError(
                "subtraction of an array-coefficient term is outside the "
                "sum-of-products form; negate the coefficient array instead",
                term.location,
                span=term.span,
            )
        scalar = -(scalar if scalar is not None else 1.0)

    if term.chain is not None:
        offsets = compose_offsets(term.chain.shifts)
        dy = offsets.get(plane[0], 0)
        dx = offsets.get(plane[1], 0)
        coeff = _combine_coeff(term.coeff_name, scalar, term.location)
        return Tap(offset=(dy, dx), coeff=coeff, shifts=term.chain.shifts)

    # No shifted reference: the data role falls to a bare occurrence of the
    # source name, otherwise this is a constant term.
    names = {n for n in (term.coeff_name, term.bare_name) if n}
    if source in names:
        other = (names - {source}).pop() if len(names) == 2 else None
        coeff = _combine_coeff(other, scalar, term.location)
        return Tap(offset=(0, 0), coeff=coeff, shifts=())
    if len(names) == 1:
        coeff = _combine_coeff(names.pop(), scalar, term.location)
        return Tap(offset=(0, 0), coeff=coeff, is_constant_term=True)
    if not names and scalar is not None:
        return Tap(
            offset=(0, 0),
            coeff=Coefficient.scalar(scalar),
            is_constant_term=True,
        )
    raise NotAStencilError(
        "term fits no stencil form (c * s(x), s(x) * c, s(x), or c)",
        term.location,
        span=term.span,
    )


def _combine_coeff(
    name: Optional[str], scalar: Optional[float], location: SourceLocation
) -> Coefficient:
    if name is not None and scalar is not None:
        raise NotAStencilError(
            "a term may not multiply an array coefficient by a scalar "
            "literal; fold the scalar into the coefficient array",
            location,
        )
    if name is not None:
        return Coefficient.array(name)
    if scalar is not None:
        return Coefficient.scalar(scalar)
    return Coefficient.unit()


def _fold_duplicates(
    taps: Sequence[Tap], location: SourceLocation
) -> List[Tap]:
    """Fold repeated offsets with scalar coefficients; reject array repeats."""
    out: List[Tap] = []
    index_by_offset: Dict[Tuple[int, int], int] = {}
    for tap in taps:
        if tap.is_constant_term:
            out.append(tap)
            continue
        if tap.offset not in index_by_offset:
            index_by_offset[tap.offset] = len(out)
            out.append(tap)
            continue
        at = index_by_offset[tap.offset]
        existing = out[at]
        scalars = (
            existing.coeff.kind is not CoeffKind.ARRAY
            and tap.coeff.kind is not CoeffKind.ARRAY
        )
        if not scalars:
            raise NotAStencilError(
                f"two terms read the same offset {tap.offset} with array "
                "coefficients; fold the coefficient arrays before compiling",
                location,
            )
        combined = _scalar_value(existing.coeff) + _scalar_value(tap.coeff)
        out[at] = Tap(
            offset=existing.offset,
            coeff=Coefficient.scalar(combined),
            shifts=existing.shifts,
        )
    return out


def _scalar_value(coeff: Coefficient) -> float:
    return 1.0 if coeff.kind is CoeffKind.UNIT else float(coeff.value)


def _check_ranks(
    assignment: Assignment,
    source: str,
    taps: Sequence[Tap],
    plane: Tuple[int, int],
    ranks: Optional[Dict[str, int]],
) -> None:
    if not ranks:
        return
    involved = {assignment.target, source}
    involved.update(
        tap.coeff.name for tap in taps if tap.coeff.kind is CoeffKind.ARRAY
    )
    declared = {name: ranks[name] for name in involved if name in ranks}
    if not declared:
        return
    distinct = set(declared.values())
    if len(distinct) > 1:
        raise NotAStencilError(
            "all arrays in a stencil statement must have the same rank; "
            f"found {declared}",
            assignment.location,
        )
    rank = distinct.pop()
    if max(plane) > rank:
        raise NotAStencilError(
            f"shifts reference dimension {max(plane)} but the arrays have "
            f"rank {rank}",
            assignment.location,
        )


# ----------------------------------------------------------------------
# Subroutine-level entry points (paper versions 2 and 3)
# ----------------------------------------------------------------------


def recognize_subroutine(sub: Subroutine) -> StencilPattern:
    """Version-2 behaviour: the stencil statement isolated in a subroutine.

    The subroutine must contain exactly one assignment; the pattern is
    named after the subroutine.
    """
    if len(sub.statements) != 1:
        raise NotAStencilError(
            f"subroutine {sub.name} must contain exactly one assignment "
            f"statement, found {len(sub.statements)}",
            sub.location,
        )
    ranks = {
        name: decl.rank for decl in sub.declarations for name in decl.names
    }
    return recognize_assignment(
        sub.statements[0], name=sub.name.lower(), ranks=ranks
    )


def scan_subroutine(
    sub: Subroutine, sink: Optional[DiagnosticSink] = None
) -> List[Tuple[Assignment, Optional[StencilPattern]]]:
    """Version-3 behaviour: find stencil candidates inside a subroutine.

    Every assignment is tried; failures on statements carrying a stencil
    directive produce warnings (the feedback the paper's section 6 plans),
    while undirected failures are silently left to the stock compiler.
    """
    sink = sink if sink is not None else DiagnosticSink()
    ranks = {
        name: decl.rank for decl in sub.declarations for name in decl.names
    }
    results: List[Tuple[Assignment, Optional[StencilPattern]]] = []
    for index, statement in enumerate(sub.statements):
        try:
            pattern = recognize_assignment(
                statement,
                name=f"{sub.name.lower()}_{index}",
                ranks=ranks,
            )
        except NotAStencilError as exc:
            if statement.directive is not None:
                sink.warn(
                    f"statement flagged {statement.directive!r} could not "
                    f"be processed by the convolution compiler: {exc.message}",
                    statement.location,
                )
            results.append((statement, None))
        else:
            results.append((statement, pattern))
    return results
