"""Recursive-descent parser for the stencil-relevant Fortran subset.

Grammar (statement separators are newlines; ``&`` continuations were
already folded by the lexer)::

    program      ::= { subroutine | assignment }
    subroutine   ::= SUBROUTINE name ( name {, name} ) NL
                     { declaration NL }
                     { assignment NL }
                     END [SUBROUTINE [name]] NL
    declaration  ::= type-name [, ARRAY ( : {, :} )] [,DIMENSION( : {, :})]
                     :: name {, name}
    assignment   ::= name = expr
    expr         ::= term { (+|-) term }
    term         ::= factor { (*|/) factor }
    factor       ::= [+|-] primary
    primary      ::= number | name | call | ( expr )
    call         ::= name ( arg {, arg} )
    arg          ::= expr | name = expr

Bare assignments outside a subroutine are accepted so callers can hand a
single statement to :func:`parse_assignment`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast_nodes import (
    Assignment,
    BinOp,
    Call,
    Declaration,
    Expr,
    IntLit,
    Name,
    Program,
    RealLit,
    Statement,
    Subroutine,
    UnaryOp,
)
from .errors import ParseError, SourceLocation, Span, span_union
from .lexer import Token, TokenKind, fixed_to_free, looks_fixed_form, tokenize

_TYPE_KEYWORDS = {"REAL", "INTEGER", "DOUBLE", "COMPLEX", "LOGICAL"}


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def expect(self, kind: TokenKind, what: str = "") -> Token:
        token = self.peek()
        if token.kind is not kind:
            wanted = what or kind.value
            raise ParseError(
                f"expected {wanted}, found {token.describe()}",
                token.location,
                span=token.span,
            )
        return self.advance()

    def expect_keyword(self, keyword: str) -> Token:
        token = self.peek()
        if token.kind is not TokenKind.IDENT or token.text != keyword:
            raise ParseError(
                f"expected {keyword}, found {token.describe()}",
                token.location,
                span=token.span,
            )
        return self.advance()

    def at_keyword(self, keyword: str) -> bool:
        token = self.peek()
        return token.kind is TokenKind.IDENT and token.text == keyword

    def skip_newlines(self) -> None:
        while self.peek().kind is TokenKind.NEWLINE:
            self.advance()

    def end_statement(self) -> None:
        token = self.peek()
        if token.kind is TokenKind.EOF:
            return
        if token.kind is not TokenKind.NEWLINE:
            raise ParseError(
                f"unexpected {token.describe()} at end of statement",
                token.location,
            )
        self.skip_newlines()

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        self.skip_newlines()
        pending_directive: Optional[str] = None
        while self.peek().kind is not TokenKind.EOF:
            token = self.peek()
            if token.kind is TokenKind.DIRECTIVE:
                pending_directive = self.advance().text
                self.skip_newlines()
                continue
            if self.at_keyword("SUBROUTINE"):
                program.subroutines.append(self.parse_subroutine())
                pending_directive = None
            else:
                raise ParseError(
                    f"expected SUBROUTINE, found {token.describe()}",
                    token.location,
                )
            self.skip_newlines()
        return program

    def parse_subroutine(self) -> Subroutine:
        start = self.expect_keyword("SUBROUTINE")
        name = self.expect(TokenKind.IDENT, "subroutine name").text
        params: List[str] = []
        self.expect(TokenKind.LPAREN)
        if self.peek().kind is not TokenKind.RPAREN:
            params.append(self.expect(TokenKind.IDENT, "parameter name").text)
            while self.peek().kind is TokenKind.COMMA:
                self.advance()
                params.append(self.expect(TokenKind.IDENT, "parameter name").text)
        self.expect(TokenKind.RPAREN)
        self.end_statement()

        sub = Subroutine(name=name, params=tuple(params), location=start.location)
        pending_directive: Optional[str] = None
        while True:
            token = self.peek()
            if token.kind is TokenKind.EOF:
                raise ParseError("missing END for subroutine", token.location)
            if token.kind is TokenKind.DIRECTIVE:
                pending_directive = self.advance().text
                self.skip_newlines()
                continue
            if self.at_keyword("END"):
                self.advance()
                if self.at_keyword("SUBROUTINE"):
                    self.advance()
                    if self.peek().kind is TokenKind.IDENT:
                        self.advance()
                self.end_statement()
                return sub
            if token.kind is TokenKind.IDENT and token.text in _TYPE_KEYWORDS:
                sub.declarations.append(self.parse_declaration())
                self.end_statement()
                continue
            statement = self.parse_assignment_statement(pending_directive)
            pending_directive = None
            sub.statements.append(statement)
            self.end_statement()

    def parse_declaration(self) -> Declaration:
        start = self.peek()
        base = self.advance().text
        if base == "DOUBLE" and self.at_keyword("PRECISION"):
            self.advance()
            base = "DOUBLE PRECISION"
        rank = 0
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            attr = self.expect(TokenKind.IDENT, "declaration attribute").text
            if attr in ("ARRAY", "DIMENSION"):
                rank = self._parse_deferred_shape()
            elif attr in ("INTENT",):
                # INTENT(IN) and friends: skip the parenthesized part.
                self.expect(TokenKind.LPAREN)
                while self.peek().kind is not TokenKind.RPAREN:
                    self.advance()
                self.expect(TokenKind.RPAREN)
            # Other attributes (PARAMETER, SAVE...) take no arguments here.
        self.expect(TokenKind.DOUBLE_COLON, "'::'")
        names = [self.expect(TokenKind.IDENT, "declared name").text]
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            names.append(self.expect(TokenKind.IDENT, "declared name").text)
        return Declaration(
            location=start.location, base_type=base, rank=rank, names=tuple(names)
        )

    def _parse_deferred_shape(self) -> int:
        """Parse ``( : , : , ... )`` and return the rank."""
        self.expect(TokenKind.LPAREN)
        rank = 0
        while True:
            self.expect(TokenKind.COLON, "':' in deferred shape")
            rank += 1
            if self.peek().kind is TokenKind.COMMA:
                self.advance()
                continue
            break
        self.expect(TokenKind.RPAREN)
        return rank

    def parse_assignment_statement(
        self, directive: Optional[str] = None
    ) -> Assignment:
        target_token = self.expect(TokenKind.IDENT, "assignment target")
        self.expect(TokenKind.EQUALS, "'='")
        expr = self.parse_expr()
        return Assignment(
            location=target_token.location,
            span=span_union(target_token.span, expr.span),
            target=target_token.text,
            expr=expr,
            directive=directive,
        )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expr(self) -> Expr:
        left = self.parse_term()
        while self.peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self.advance()
            right = self.parse_term()
            left = BinOp(
                location=op.location,
                span=span_union(left.span, right.span),
                op=op.text,
                left=left,
                right=right,
            )
        return left

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        while self.peek().kind in (TokenKind.STAR, TokenKind.SLASH):
            op = self.advance()
            right = self.parse_factor()
            left = BinOp(
                location=op.location,
                span=span_union(left.span, right.span),
                op=op.text,
                left=left,
                right=right,
            )
        return left

    def parse_factor(self) -> Expr:
        token = self.peek()
        if token.kind in (TokenKind.PLUS, TokenKind.MINUS):
            self.advance()
            operand = self.parse_factor()
            return UnaryOp(
                location=token.location,
                span=span_union(token.span, operand.span),
                op=token.text,
                operand=operand,
            )
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind is TokenKind.INT:
            self.advance()
            return IntLit(
                location=token.location, span=token.span, value=int(token.text)
            )
        if token.kind is TokenKind.REAL:
            self.advance()
            text = token.text.upper().replace("D", "E")
            return RealLit(
                location=token.location, span=token.span, value=float(text)
            )
        if token.kind is TokenKind.LPAREN:
            self.advance()
            inner = self.parse_expr()
            self.expect(TokenKind.RPAREN)
            return inner
        if token.kind is TokenKind.IDENT:
            self.advance()
            if self.peek().kind is TokenKind.LPAREN:
                return self._parse_call(token)
            return Name(location=token.location, span=token.span, ident=token.text)
        raise ParseError(
            f"expected an expression, found {token.describe()}",
            token.location,
            span=token.span,
        )

    def _parse_call(self, name_token: Token) -> Call:
        self.expect(TokenKind.LPAREN)
        args: List[Expr] = []
        kwargs: List[Tuple[str, Expr]] = []
        if self.peek().kind is not TokenKind.RPAREN:
            while True:
                if (
                    self.peek().kind is TokenKind.IDENT
                    and self.peek(1).kind is TokenKind.EQUALS
                ):
                    key = self.advance().text
                    self.advance()  # '='
                    kwargs.append((key, self.parse_expr()))
                else:
                    if kwargs:
                        raise ParseError(
                            "positional argument after keyword argument",
                            self.peek().location,
                            span=self.peek().span,
                        )
                    args.append(self.parse_expr())
                if self.peek().kind is TokenKind.COMMA:
                    self.advance()
                    continue
                break
        rparen = self.expect(TokenKind.RPAREN)
        return Call(
            location=name_token.location,
            span=Span(start=name_token.location, end=rparen.end_location),
            func=name_token.text,
            args=tuple(args),
            kwargs=tuple(kwargs),
        )


def _prepare(source: str, fixed_form) -> str:
    """Normalize the source format before tokenizing.

    ``fixed_form`` None auto-detects the classic card-image layout
    (column-1 comments, column-6 continuations) and converts it to the
    free form the lexer reads; True forces the conversion; False leaves
    the source untouched.
    """
    if fixed_form is None:
        fixed_form = looks_fixed_form(source)
    return fixed_to_free(source) if fixed_form else source


def parse_program(
    source: str, filename: str = "<fortran>", *, fixed_form=None
) -> Program:
    """Parse a source file of subroutines (free or fixed form)."""
    prepared = _prepare(source, fixed_form)
    return Parser(tokenize(prepared, filename)).parse_program()


def parse_subroutine(
    source: str, filename: str = "<fortran>", *, fixed_form=None
) -> Subroutine:
    """Parse a source file expected to contain exactly one subroutine."""
    program = parse_program(source, filename, fixed_form=fixed_form)
    if len(program.subroutines) != 1:
        # Anchor the error at the second subroutine when there are too
        # many, at the top of the file when there are none, so the
        # diagnostic always carries a real (line, col).
        if len(program.subroutines) > 1:
            location = program.subroutines[1].location
        else:
            location = SourceLocation(1, 1, filename)
        raise ParseError(
            f"expected exactly one subroutine, found {len(program.subroutines)}",
            location,
        )
    return program.subroutines[0]


def parse_assignment(source: str, filename: str = "<statement>") -> Assignment:
    """Parse a bare array assignment statement (with continuations)."""
    parser = Parser(tokenize(source, filename))
    parser.skip_newlines()
    directive = None
    if parser.peek().kind is TokenKind.DIRECTIVE:
        directive = parser.advance().text
        parser.skip_newlines()
    statement = parser.parse_assignment_statement(directive)
    parser.end_statement()
    token = parser.peek()
    if token.kind is not TokenKind.EOF:
        raise ParseError(
            f"trailing input after assignment: {token.describe()}", token.location
        )
    return statement
