"""Abstract syntax for the Fortran subset.

Expression nodes carry their source location so the recognizer can point
its diagnostics at the offending term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .errors import SourceLocation, Span


@dataclass(frozen=True)
class Expr:
    """Base class for expression nodes.

    ``span`` covers the node's full source extent (None when the node
    was built programmatically); ``location`` is its anchor point.
    """

    location: SourceLocation
    span: Optional[Span] = None

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Name(Expr):
    """A whole-array or scalar variable reference."""

    ident: str = ""

    def describe(self) -> str:
        return self.ident


@dataclass(frozen=True)
class IntLit(Expr):
    value: int = 0

    def describe(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class RealLit(Expr):
    value: float = 0.0

    def describe(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str = "+"
    operand: Optional[Expr] = None

    def describe(self) -> str:
        return f"({self.op}{self.operand.describe()})"


@dataclass(frozen=True)
class BinOp(Expr):
    op: str = "+"
    left: Optional[Expr] = None
    right: Optional[Expr] = None

    def describe(self) -> str:
        return f"({self.left.describe()} {self.op} {self.right.describe()})"


@dataclass(frozen=True)
class Call(Expr):
    """An intrinsic call, e.g. ``CSHIFT(X, DIM=1, SHIFT=-1)``.

    ``args`` holds positional arguments; ``kwargs`` the keyword arguments
    in source order.
    """

    func: str = ""
    args: Tuple[Expr, ...] = ()
    kwargs: Tuple[Tuple[str, Expr], ...] = ()

    def describe(self) -> str:
        parts = [a.describe() for a in self.args]
        parts += [f"{k}={v.describe()}" for k, v in self.kwargs]
        return f"{self.func}({', '.join(parts)})"


@dataclass(frozen=True)
class Statement:
    location: SourceLocation
    span: Optional[Span] = None


@dataclass(frozen=True)
class Assignment(Statement):
    """A whole-array assignment ``target = expr``."""

    target: str = ""
    expr: Optional[Expr] = None
    directive: Optional[str] = None  # text of a preceding !REPRO$/!CMF$ comment

    def describe(self) -> str:
        return f"{self.target} = {self.expr.describe()}"


@dataclass(frozen=True)
class Declaration(Statement):
    """A type declaration, e.g. ``REAL, ARRAY(:, :) :: R, X, C1``.

    Only the pieces the recognizer needs are kept: the base type, the
    declared rank (number of ``:`` placeholders, 0 for scalars), and the
    declared names.
    """

    base_type: str = "REAL"
    rank: int = 0
    names: Tuple[str, ...] = ()

    def describe(self) -> str:
        shape = f", ARRAY({', '.join(':' * 1 for _ in range(self.rank))})" if self.rank else ""
        return f"{self.base_type}{shape} :: {', '.join(self.names)}"


@dataclass
class Subroutine:
    """A parsed subroutine: the unit the paper's second version compiles."""

    name: str
    params: Tuple[str, ...]
    declarations: List[Declaration] = field(default_factory=list)
    statements: List[Assignment] = field(default_factory=list)
    location: SourceLocation = SourceLocation(1, 1)

    def rank_of(self, name: str) -> Optional[int]:
        """Declared rank of ``name``, or None if undeclared."""
        for decl in self.declarations:
            if name.upper() in decl.names:
                return decl.rank
        return None

    def describe(self) -> str:
        return f"SUBROUTINE {self.name}({', '.join(self.params)})"


@dataclass
class Program:
    """A parsed source file: a sequence of subroutines."""

    subroutines: List[Subroutine] = field(default_factory=list)

    def find(self, name: str) -> Subroutine:
        for sub in self.subroutines:
            if sub.name == name.upper():
                return sub
        raise KeyError(f"no subroutine named {name!r}")
