"""Tokenizer for the Fortran 90 subset the convolution compiler accepts.

Free-form source, case-insensitive keywords and identifiers (normalized to
upper case), ``!`` comments, and ``&`` continuation lines (a trailing ``&``
continues the statement; an optional leading ``&`` on the next line is
consumed, per Fortran 90 rules).

Directives survive tokenization: a comment beginning ``!REPRO$`` or
``!CMF$`` is emitted as a DIRECTIVE token attached to the following
statement, supporting the paper's planned structured-comment stencil
directive (section 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from .errors import LexError, SourceLocation, Span


class TokenKind(enum.Enum):
    IDENT = "ident"
    INT = "int"
    REAL = "real"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    EQUALS = "="
    DOUBLE_COLON = "::"
    COLON = ":"
    NEWLINE = "newline"
    DIRECTIVE = "directive"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    location: SourceLocation

    @property
    def end_location(self) -> SourceLocation:
        """One past the token's last character (tokens never span lines)."""
        return SourceLocation(
            self.location.line,
            self.location.column + max(1, len(self.text)),
            self.location.filename,
        )

    @property
    def span(self) -> Span:
        """The source region this token occupies."""
        return Span(start=self.location, end=self.end_location)

    def describe(self) -> str:
        return f"{self.kind.value}({self.text!r})"


_SINGLE_CHAR_TOKENS = {
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    "=": TokenKind.EQUALS,
}

_DIRECTIVE_PREFIXES = ("!REPRO$", "!CMF$")


class Lexer:
    """Tokenizes one Fortran source string."""

    def __init__(self, source: str, filename: str = "<fortran>") -> None:
        self.filename = filename
        self.lines = source.splitlines()

    def tokens(self) -> List[Token]:
        """Tokenize the whole source, folding continuation lines."""
        out: List[Token] = []
        continuing = False
        for line_no, raw_line in enumerate(self.lines, start=1):
            line, directive = self._strip_comment(raw_line)
            if directive is not None:
                out.append(
                    Token(
                        TokenKind.DIRECTIVE,
                        directive,
                        SourceLocation(line_no, 1, self.filename),
                    )
                )
                continue
            stripped = line.strip()
            if not stripped:
                if not continuing:
                    self._append_newline(out, line_no)
                continue
            if continuing and stripped.startswith("&"):
                # Optional leading & on a continuation line.
                lead = line.index("&")
                line = " " * (lead + 1) + line[lead + 1 :]
                stripped = line.strip()
            trailing_continuation = stripped.endswith("&")
            if trailing_continuation:
                amp = line.rindex("&")
                line = line[:amp]
            out.extend(self._tokenize_line(line, line_no))
            if trailing_continuation:
                continuing = True
            else:
                continuing = False
                self._append_newline(out, line_no)
        if continuing:
            raise LexError(
                "source ends in the middle of a continued statement",
                SourceLocation(len(self.lines), 1, self.filename),
            )
        out.append(
            Token(
                TokenKind.EOF, "", SourceLocation(len(self.lines) + 1, 1, self.filename)
            )
        )
        return out

    # ------------------------------------------------------------------

    def _append_newline(self, out: List[Token], line_no: int) -> None:
        # Collapse consecutive newlines; the parser treats NEWLINE as a
        # statement separator and never needs empties.
        if out and out[-1].kind is TokenKind.NEWLINE:
            return
        out.append(
            Token(TokenKind.NEWLINE, "\n", SourceLocation(line_no, 1, self.filename))
        )

    def _strip_comment(self, line: str) -> "tuple[str, Optional[str]]":
        """Remove a trailing ``!`` comment; detect directive comments.

        Returns ``(code, directive_text_or_None)``.  A directive line
        contains nothing but the directive comment.
        """
        upper = line.lstrip().upper()
        for prefix in _DIRECTIVE_PREFIXES:
            if upper.startswith(prefix):
                return "", line.strip()[len(prefix) :].strip().upper()
        if "!" in line:
            line = line[: line.index("!")]
        return line, None

    def _tokenize_line(self, line: str, line_no: int) -> Iterator[Token]:
        i = 0
        n = len(line)
        while i < n:
            ch = line[i]
            if ch in " \t":
                i += 1
                continue
            loc = SourceLocation(line_no, i + 1, self.filename)
            if ch == ":":
                if i + 1 < n and line[i + 1] == ":":
                    yield Token(TokenKind.DOUBLE_COLON, "::", loc)
                    i += 2
                else:
                    yield Token(TokenKind.COLON, ":", loc)
                    i += 1
                continue
            if ch in _SINGLE_CHAR_TOKENS:
                yield Token(_SINGLE_CHAR_TOKENS[ch], ch, loc)
                i += 1
                continue
            if ch.isdigit() or (ch == "." and i + 1 < n and line[i + 1].isdigit()):
                token, i = self._lex_number(line, i, loc)
                yield token
                continue
            if ch.isalpha() or ch == "_":
                start = i
                while i < n and (line[i].isalnum() or line[i] == "_"):
                    i += 1
                yield Token(TokenKind.IDENT, line[start:i].upper(), loc)
                continue
            raise LexError(f"unexpected character {ch!r}", loc)

    def _lex_number(
        self, line: str, i: int, loc: SourceLocation
    ) -> "tuple[Token, int]":
        n = len(line)
        start = i
        while i < n and line[i].isdigit():
            i += 1
        is_real = False
        if i < n and line[i] == ".":
            # Careful: 1.0 is real, but "1." followed by another "." would be
            # an operator like .EQ. (outside our subset anyway).
            is_real = True
            i += 1
            while i < n and line[i].isdigit():
                i += 1
        if i < n and line[i] in "eEdD":
            mark = i
            i += 1
            if i < n and line[i] in "+-":
                i += 1
            if i < n and line[i].isdigit():
                is_real = True
                while i < n and line[i].isdigit():
                    i += 1
            else:
                i = mark  # not an exponent; back off
        text = line[start:i]
        kind = TokenKind.REAL if is_real else TokenKind.INT
        return Token(kind, text, loc), i


def tokenize(source: str, filename: str = "<fortran>") -> List[Token]:
    """Convenience wrapper: tokenize a source string."""
    return Lexer(source, filename).tokens()


# ----------------------------------------------------------------------
# Fixed-form (FORTRAN 77 card-image) support
# ----------------------------------------------------------------------


#: Characters conventionally used in column 6 to mark a continuation
#: card (free-form code indented five spaces would put a letter there).
_CONTINUATION_MARKS = set("123456789*+&$.")


def looks_fixed_form(source: str) -> bool:
    """Heuristic: classic comment cards or column-6 continuation marks.

    Free-form sources in the paper's style (indented code, trailing
    ``&`` continuations, ``!`` comments) do not match: a 'C' in column 1
    only counts as a comment card when the line carries no ``=`` (so
    statements like ``C1 = ...`` stay free-form).
    """
    for line in source.splitlines():
        if not line.strip():
            continue
        if line[0] in ("C", "c", "*") and "=" not in line:
            return True
        if (
            len(line) > 6
            and line[:5] == "     "
            and line[5] in _CONTINUATION_MARKS
        ):
            return True
    return False


def fixed_to_free(source: str) -> str:
    """Convert fixed-form card images to the free-form the lexer reads.

    Rules applied: column-1 ``C``/``c``/``*`` comments are dropped
    (except directive comments like ``CMF$``, which pass through as
    ``!CMF$``); columns 1-5 may hold a numeric label (dropped -- the
    stencil subset has no branches); a non-blank, non-zero column 6
    continues the previous statement; code occupies columns 7-72.
    """
    statements: List[str] = []
    for raw in source.splitlines():
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        head = line[0]
        if head in ("C", "c", "*", "!"):
            text = line.strip()
            upper = text.upper()
            # Directive cards survive conversion: CMF$ in column 1 (the
            # fixed-form spelling) and !CMF$/!REPRO$ both become the
            # free-form !-prefixed directive.
            if upper.startswith(("CMF$", "!CMF$", "!REPRO$")):
                statements.append(text if text.startswith("!") else "!" + text)
            continue
        code = line[6:72] if len(line) > 6 else ""
        continuation = len(line) > 5 and line[5] not in (" ", "0")
        label = line[:5].strip()
        if label and not label.isdigit():
            # Not really fixed form (e.g. code starting in column 1);
            # treat the whole line as free-form code.
            code = line
            continuation = False
        if continuation and statements and not statements[-1].startswith("!"):
            statements[-1] += " " + code.strip()
        else:
            statements.append(code.strip())
    return "\n".join(s for s in statements if s)


def tokenize_fixed(source: str, filename: str = "<fortran>") -> List[Token]:
    """Tokenize fixed-form source (line numbers refer to the converted
    free-form text)."""
    return Lexer(fixed_to_free(source), filename).tokens()
