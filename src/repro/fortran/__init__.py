"""Fortran 90 front end: lexer, parser, and stencil recognizer."""

from .ast_nodes import (
    Assignment,
    BinOp,
    Call,
    Declaration,
    Expr,
    IntLit,
    Name,
    Program,
    RealLit,
    Statement,
    Subroutine,
    UnaryOp,
)
from .errors import (
    Diagnostic,
    DiagnosticSink,
    FortranError,
    LexError,
    NotAStencilError,
    ParseError,
    SourceLocation,
)
from .lexer import Lexer, Token, TokenKind, tokenize
from .parser import Parser, parse_assignment, parse_program, parse_subroutine
from .printer import emit_statement, emit_subroutine
from .recognizer import (
    recognize_assignment,
    recognize_subroutine,
    scan_subroutine,
)

__all__ = [
    "Assignment",
    "BinOp",
    "Call",
    "Declaration",
    "Diagnostic",
    "DiagnosticSink",
    "Expr",
    "FortranError",
    "IntLit",
    "LexError",
    "Lexer",
    "Name",
    "NotAStencilError",
    "ParseError",
    "Parser",
    "Program",
    "RealLit",
    "SourceLocation",
    "Statement",
    "Subroutine",
    "Token",
    "TokenKind",
    "UnaryOp",
    "emit_statement",
    "emit_subroutine",
    "parse_assignment",
    "parse_program",
    "parse_subroutine",
    "recognize_assignment",
    "recognize_subroutine",
    "scan_subroutine",
    "tokenize",
]
