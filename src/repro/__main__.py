"""Command-line interface: ``python -m repro <command>``.

Commands:

``compile <file>``
    Compile a Fortran subroutine/statement (``.f``, ``.f90``, or
    anything else) or a Lisp ``defstencil`` form (``.lisp``/``.lsp``)
    and print the full compilation report: the recognized stencil, its
    pictogram, per-width plans, and rejections.

``bench <pattern>``
    Run a gallery pattern on the simulated machine and print a results-
    table row (``--subgrid 256x256 --nodes 16 --iterations 100``).

``figure1``
    Print the paper's Figure 1 decomposition for ``--shape`` over
    ``--nodes``.

``gallery``
    List the built-in patterns with their pictograms.

``lint <file>...``
    Run the static front-end linter: caret-underlined diagnostics with
    ``RS###`` codes and fix-its (``--max-halo`` tunes the RS101 halo
    ceiling).  Exit status 1 if any diagnostic is an error.

``verify``
    Sweep the stencil gallery through the static plan verifier
    (dataflow + ring lifetimes) across every width and ring-sizing
    strategy.  Exit status 1 on any diagnostic.

``racecheck [path...]``
    Statically verify the lock/guard discipline of repro's own threaded
    control plane (default target: the installed ``repro`` package):
    ``# guarded-by:`` annotations, lock-acquisition order,
    condition-variable usage (RS701-RS706), caret diagnostics with
    fix-its.  ``--graph`` also prints the inferred lock-order graph the
    ``RS_LOCKDEP=1`` runtime cross-checks at run time.  Exit status 1
    on any diagnostic.

``lint``/``verify``/``racecheck`` all accept ``--json FILE`` (``-``
for stdout) to emit machine-readable diagnostics: RS code, path, span,
message, and fix-it per finding, for CI and editor consumption.

``chaos``
    Run a seeded hard-fault campaign across the gallery: every stencil
    x boundary x execution mode, on a machine with spare nodes, under
    injected node deaths, link failures, and slow nodes.  Prints the
    survival report; ``--json FILE`` additionally dumps the full
    machine-readable report (per-trial FaultStats and event streams).
    Exit status 1 unless every trial survived bit-identically and all
    recovery costs reconciled.  ``--service`` runs the service chaos
    campaign instead: seeded worker crashes, job hangs, tenant storms,
    and SIGKILL/journal-resume trials against the scheduler, asserting
    zero lost jobs, zero double runs, healthy-tenant bit-identity, and
    exact ledger reconciliation.  ``--sdc`` runs the silent-data-
    corruption campaign instead: seeded bit-flips struck into resident
    result tiles under the ABFT checksum verifier, asserting 100%
    detection, forward correction of single-cell damage with zero
    rollback and zero replay, rollback-ladder fallback for multi-cell
    damage, bit-identical outputs, and exact cycle reconciliation
    including the dedicated ``abft_cycles`` bucket.

``serve``
    Stencil-as-a-service: read a job file (``--jobs jobs.json``), carve
    the node grid into per-tenant partitions, run every job through the
    async scheduler, and print the per-tenant cycle accounting, fairness
    index, and concurrency speedup.  Every scheduled result is verified
    bit-identical against a solo run of the same job (``--no-verify``
    skips).  Exit status 1 on any job failure, identity mismatch, or
    ledger reconciliation failure.  ``--journal PATH`` records every
    submission, attempt, and completion to an append-only JSONL file: a
    killed service re-run with the same journal resumes, replaying
    completed jobs instead of re-running them.  ``--deadline``,
    ``--max-attempts``, ``--breaker-threshold``, and ``--queue-depth``
    expose the fault-containment policy.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path


def _parse_shape(text: str):
    try:
        rows, cols = text.lower().split("x")
        return int(rows), int(cols)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected ROWSxCOLS (e.g. 256x256), got {text!r}"
        )


def cmd_compile(args) -> int:
    from .compiler.driver import compile_defstencil, compile_fortran
    from .machine.params import MachineParams

    source = Path(args.file).read_text()
    params = MachineParams(num_nodes=args.nodes)
    if Path(args.file).suffix.lower() in (".lisp", ".lsp", ".cl"):
        compiled = compile_defstencil(source, params)
    else:
        compiled = compile_fortran(source, params)
    if args.strategy != "paper":
        from .compiler.plan import compile_pattern

        compiled = compile_pattern(
            compiled.pattern, params, strategy=args.strategy
        )
    pattern = compiled.pattern
    print(pattern.describe())
    print()
    print(pattern.pictogram())
    print()
    from .fortran.printer import emit_statement

    print("canonical form:")
    print(emit_statement(pattern, width=60))
    widths = pattern.border_widths()
    print()
    print(
        f"taps: {pattern.num_points}  useful flops/point: "
        f"{pattern.useful_flops_per_point()}  borders N/S/W/E: "
        f"{widths.as_tuple()}  corner exchange: "
        f"{'needed' if pattern.needs_corner_exchange() else 'skippable'}"
    )
    print()
    print(compiled.describe())
    return 0


def cmd_bench(args) -> int:
    from .analysis.timing import report
    from .compiler.driver import compile_stencil
    from .machine.machine import CM2
    from .machine.params import MachineParams
    from .runtime.cm_array import CMArray
    from .runtime.stencil_op import apply_stencil
    from .stencil import gallery

    builder = getattr(gallery, args.pattern, None)
    if builder is None:
        print(f"unknown pattern {args.pattern!r}; try 'gallery'", file=sys.stderr)
        return 1
    pattern = builder()
    params = MachineParams(num_nodes=args.nodes)
    machine = CM2(params)
    subgrid = args.subgrid
    gshape = (subgrid[0] * machine.grid_rows, subgrid[1] * machine.grid_cols)
    compiled = compile_stencil(pattern, params)
    x = CMArray("X", machine, gshape)
    coeffs = {
        name: CMArray(name, machine, gshape)
        for name in pattern.coefficient_names()
    }
    run = apply_stencil(compiled, x, coeffs, iterations=args.iterations)
    rep = report(run)
    print(rep.row())
    return 0


def cmd_figure1(args) -> int:
    from .machine.machine import CM2
    from .machine.params import MachineParams
    from .runtime.decomposition import Decomposition

    machine = CM2(MachineParams(num_nodes=args.nodes))
    print(Decomposition(args.shape, machine).figure1_text())
    return 0


def cmd_validate(args) -> int:
    """Cross-validate the three execution semantics on a problem grid.

    For each gallery pattern: the vectorized fast path must match the
    pure-numpy reference bit for bit, the cycle-stepped WTL3164 datapath
    must match the fast path bit for bit, and the closed-form cycle
    model must equal the stepped simulator exactly.
    """
    import numpy as np

    from .baseline.reference import reference_stencil
    from .compiler.driver import compile_stencil
    from .machine.machine import CM2
    from .machine.params import MachineParams
    from .runtime.cm_array import CMArray
    from .runtime.stencil_op import apply_stencil
    from .stencil import gallery

    params = MachineParams(num_nodes=args.nodes)
    rng = np.random.default_rng(args.seed)
    failures = 0
    for name in ("cross5", "cross9", "square9", "diamond13", "asymmetric5"):
        pattern = getattr(gallery, name)()
        machine = CM2(params)
        shape = (16, 24)
        x = rng.standard_normal(shape).astype(np.float32)
        coeffs = {
            coeff_name: rng.standard_normal(shape).astype(np.float32)
            for coeff_name in pattern.coefficient_names()
        }
        compiled = compile_stencil(pattern, params)
        X = CMArray.from_numpy("X", machine, x)
        C = {
            coeff_name: CMArray.from_numpy(coeff_name, machine, data)
            for coeff_name, data in coeffs.items()
        }
        fast = apply_stencil(compiled, X, C, "RFAST")
        exact = apply_stencil(compiled, X, C, "REXACT", exact=True)
        reference = reference_stencil(pattern, x, coeffs)
        checks = {
            "fast == reference (bitwise)": np.array_equal(
                fast.result.to_numpy(), reference
            ),
            "exact == fast (bitwise)": np.array_equal(
                exact.result.to_numpy(), fast.result.to_numpy()
            ),
            "cycle model == stepped datapath": (
                exact.compute_cycles == fast.compute_cycles
            ),
        }
        verdict = "ok" if all(checks.values()) else "FAILED"
        print(f"{name:<12} {verdict}")
        for label, passed in checks.items():
            print(f"    {'pass' if passed else 'FAIL'}  {label}")
            failures += 0 if passed else 1
    if failures:
        print(f"\n{failures} check(s) failed", file=sys.stderr)
        return 1
    print("\nall semantics agree")
    return 0


def cmd_reproduce(args) -> int:
    """Regenerate the headline paper-vs-measured numbers in one run."""
    from .analysis.sweeps import table1_sweep
    from .analysis.tables import format_comparison, format_table
    from .analysis.timing import extrapolate_mflops
    from .apps.seismic import SeismicModel, ricker_wavelet
    from .machine.machine import CM2
    from .machine.params import MachineParams

    print("Section 7 results table (16 nodes, extrapolated to 2,048):")
    print()
    reports = table1_sweep()
    print(format_table(reports))
    print()

    paper_cells = {
        ("cross5", 256): 72.8,
        ("square9", 256): 88.6,
        ("cross9", 256): 85.6,
        ("diamond13", 256): 85.9,
    }
    rows = []
    for rep in reports:
        key = (rep.stencil, rep.subgrid_rows)
        if key in paper_cells and rep.subgrid_cols == 256:
            rows.append(
                (
                    f"{rep.stencil} 256x256 (Mflops)",
                    paper_cells[key],
                    rep.measured_mflops,
                )
            )

    print("Gordon Bell seismic kernel (copy / unrolled / fused):")
    steps = 20
    gb = {}
    for label, runner, paper in (
        ("GB copy loop (Gflops)", "run_copy_loop", 13.65),
        ("GB 3x-unrolled (Gflops)", "run_unrolled_loop", 14.95),
    ):
        machine = CM2(MachineParams(num_nodes=16))
        model = SeismicModel(
            machine, (512, 1024), dt=0.001, dx=10.0, source=(128, 512)
        )
        model.set_initial_pulse(sigma=3.0)
        timing = getattr(model, runner)(steps, ricker_wavelet(steps, 0.001))
        gflops = extrapolate_mflops(timing.mflops, 16, 2048) / 1e3
        gb[label] = gflops
        rows.append((label, paper, gflops))
        print(f"  {label:<28} paper {paper:6.2f}  ours {gflops:6.2f}")
    speedup = gb["GB 3x-unrolled (Gflops)"] / gb["GB copy loop (Gflops)"]
    rows.append(("GB unrolled/copy speedup", 1.28, speedup))
    print(f"  {'unrolled / copy speedup':<28} paper   1.28  ours {speedup:6.2f}")
    print()
    print(format_comparison(rows, unit=""))
    print()
    print("Full per-cell tables and ablations: EXPERIMENTS.md and")
    print("`pytest benchmarks/ --benchmark-only -s`.")
    return 0


def cmd_gallery(args) -> int:
    from .stencil import gallery

    for name in (
        "cross5",
        "cross9",
        "square9",
        "diamond13",
        "asymmetric5",
        "border_demo",
    ):
        pattern = getattr(gallery, name)()
        print(f"--- {name} ({pattern.num_points} taps) ---")
        print(pattern.pictogram())
        print()
    return 0


def _emit_json(args, payload: dict) -> None:
    """Write a ``--json`` payload to the requested file ('-' = stdout)."""
    import json

    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.json == "-":
        print(text)
    else:
        Path(args.json).write_text(text + "\n", encoding="utf-8")
        print(f"report written to {args.json}")


def cmd_lint(args) -> int:
    from .fortran.errors import has_errors, render_diagnostics
    from .verify.diagnostics import diagnostic_to_dict
    from .verify.lint import DEFAULT_MAX_HALO, lint_path

    max_halo = args.max_halo if args.max_halo is not None else DEFAULT_MAX_HALO
    worst = 0
    collected = []
    for name in args.files:
        path = Path(name)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            print(f"{name}: cannot read: {exc}", file=sys.stderr)
            worst = 1
            continue
        diagnostics = lint_path(path, max_halo=max_halo)
        for diag in diagnostics:
            entry = diagnostic_to_dict(diag)
            entry.setdefault("path", name)
            if entry["path"] is None:
                entry["path"] = name
            collected.append(entry)
        if diagnostics:
            print(render_diagnostics(diagnostics, source))
            if has_errors(diagnostics):
                worst = 1
        else:
            print(f"{name}: clean")
    if args.json:
        _emit_json(
            args,
            {
                "command": "lint",
                "diagnostics": collected,
                "ok": worst == 0,
            },
        )
    return worst


def cmd_verify(args) -> int:
    from .fortran.errors import has_errors
    from .machine.params import MachineParams
    from .verify import verify_gallery
    from .verify.diagnostics import diagnostic_to_dict

    strategies = (
        ("paper", "optimal") if args.strategy == "both" else (args.strategy,)
    )
    params = MachineParams(num_nodes=args.nodes)
    results = verify_gallery(params, strategies=strategies)
    failures = 0
    collected = []
    for (pattern_name, strategy), diagnostics in sorted(results.items()):
        status = "ok" if not diagnostics else "FAILED"
        print(f"{pattern_name:<12} {strategy:<8} {status}")
        for diag in diagnostics:
            print(f"    {diag.describe()}")
            entry = diagnostic_to_dict(diag)
            entry["pattern"] = pattern_name
            entry["strategy"] = strategy
            collected.append(entry)
        if has_errors(diagnostics):
            failures += 1
    total = len(results)
    print(f"\n{total - failures}/{total} pattern/strategy combos verified")
    if args.json:
        _emit_json(
            args,
            {
                "command": "verify",
                "combos": total,
                "diagnostics": collected,
                "ok": failures == 0,
            },
        )
    return 1 if failures else 0


def cmd_racecheck(args) -> int:
    from .fortran.errors import render_diagnostics
    from .verify.concurrency import racecheck_paths
    from .verify.diagnostics import diagnostic_to_dict

    paths = args.paths
    if not paths:
        # Default target: repro's own installed source tree.
        paths = [str(Path(__file__).resolve().parent)]
    result = racecheck_paths(paths)
    flagged = 0
    for report in result.files:
        if not report.diagnostics:
            continue
        flagged += 1
        print(render_diagnostics(report.diagnostics, report.source))
    diagnostics = result.diagnostics
    if args.graph or not diagnostics:
        edge_count = sum(len(vs) for vs in result.lock_graph.values())
        print(
            f"{len(result.files)} files, {len(result.locks)} locks, "
            f"{edge_count} lock-order edges, "
            f"{len(diagnostics)} diagnostic(s)"
        )
    if args.graph:
        for u in sorted(result.lock_graph):
            for v in result.lock_graph[u]:
                print(f"  {u} -> {v}")
    if args.json:
        _emit_json(
            args,
            {
                "command": "racecheck",
                "files": len(result.files),
                "locks": list(result.locks),
                "lock_graph": {
                    u: list(vs) for u, vs in result.lock_graph.items()
                },
                "diagnostics": [
                    diagnostic_to_dict(d) for d in diagnostics
                ],
                "ok": not diagnostics,
            },
        )
    return 1 if diagnostics else 0


class SeedSpecError(argparse.ArgumentTypeError, ValueError):
    """A malformed ``--seeds`` token.

    Doubles as :class:`ValueError` so library callers of
    :func:`_parse_seeds` can catch it without importing argparse
    machinery; argparse itself renders it as a clean usage error.
    """


def _parse_seeds(text: str):
    """Seed lists: ``1,2,3`` or ranges ``1-5`` (inclusive), mixed
    (``1-3,7``).  Rejects each malformed token by name."""
    seeds = []
    for part in text.split(","):
        token = part.strip()
        try:
            if "-" in token:
                lo_text, hi_text = token.split("-", 1)
                lo, hi = int(lo_text), int(hi_text)
                if lo > hi:
                    raise SeedSpecError(
                        f"bad seed range {token!r} in {text!r}: "
                        f"{lo} > {hi} (ranges are low-high, inclusive)"
                    )
                seeds.extend(range(lo, hi + 1))
            else:
                seeds.append(int(token))
        except ValueError as error:
            if isinstance(error, SeedSpecError):
                raise
            raise SeedSpecError(
                f"bad seed token {token!r} in {text!r} (expected an "
                f"integer or an A-B range, e.g. '1-3,7')"
            ) from None
    if not seeds:
        raise SeedSpecError(f"no seeds in {text!r}")
    return tuple(seeds)


def cmd_chaos(args) -> int:
    import json

    from .analysis.chaos import (
        run_campaign,
        run_sdc_campaign,
        run_service_campaign,
    )

    if args.service and args.sdc:
        print(
            "chaos: --service and --sdc are separate campaigns; "
            "pick one",
            file=sys.stderr,
        )
        return 2
    if args.service:
        report = run_service_campaign(seeds=args.seeds)
    elif args.sdc:
        report = run_sdc_campaign(
            seeds=args.seeds,
            nodes=args.nodes,
            iterations=args.iterations,
        )
    else:
        report = run_campaign(
            seeds=args.seeds,
            nodes=args.nodes,
            iterations=args.iterations,
            spares=args.spares,
        )
    print(report.describe())
    if args.json:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n", encoding="utf-8")
            print(f"report written to {args.json}")
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    import json

    from .analysis.fairness import format_tenant_table
    from .machine.params import MachineParams
    from .service import (
        JobSpecError,
        MachinePool,
        OverloadError,
        PartitionError,
        Scheduler,
        ServicePolicy,
        StencilJob,
        solo_run,
    )

    try:
        document = json.loads(Path(args.jobs).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{args.jobs}: cannot load: {exc}", file=sys.stderr)
        return 1
    if isinstance(document, dict):
        pool_spec = document.get("pool", {})
        job_specs = document.get("jobs", [])
    else:
        pool_spec, job_specs = {}, document
    nodes = args.nodes if args.nodes is not None else pool_spec.get("nodes", 16)
    spare_rows = (
        args.spare_rows
        if args.spare_rows is not None
        else pool_spec.get("spare_rows", 0)
    )
    try:
        jobs = [StencilJob.from_dict(spec) for spec in job_specs]
        if args.abft:
            jobs = [
                job if job.abft else dataclasses.replace(job, abft=True)
                for job in jobs
            ]
    except (JobSpecError, TypeError) as exc:
        print(f"{args.jobs}: bad job spec: {exc}", file=sys.stderr)
        return 1
    if not jobs:
        print(f"{args.jobs}: no jobs", file=sys.stderr)
        return 1

    params = MachineParams(num_nodes=nodes)
    try:
        pool = MachinePool(params, spare_rows=spare_rows)
    except PartitionError as exc:
        print(f"pool: {exc}", file=sys.stderr)
        return 1
    print(pool.describe())
    print(
        f"{len(jobs)} jobs from {len(set(j.tenant for j in jobs))} tenants, "
        f"policy {args.policy}, default partition "
        f"{pool.default_partition[0]}x{pool.default_partition[1]}"
    )
    print()

    try:
        service_policy = ServicePolicy(
            deadline_seconds=args.deadline,
            max_attempts=args.max_attempts,
            breaker_threshold=args.breaker_threshold,
            max_queue_depth=args.queue_depth,
        )
    except ValueError as exc:
        print(f"policy: {exc}", file=sys.stderr)
        return 1
    if args.journal:
        print(f"journal: {args.journal} (completed jobs resume, not re-run)")
        print()

    failures = 0
    with Scheduler(
        pool,
        policy=args.policy,
        service_policy=service_policy,
        journal_path=args.journal,
    ) as sched:
        handles = []
        for job in jobs:
            try:
                handles.append(sched.submit(job))
            except OverloadError as exc:
                print(f"SHED {job.label}: {exc}")
                failures += 1
            except PartitionError as exc:
                print(f"admission rejected: {exc}", file=sys.stderr)
                return 1
        results = []
        for handle in handles:
            try:
                results.append(handle.result(timeout=args.timeout))
            except Exception as exc:  # noqa: BLE001 - reported per job
                print(f"FAIL {handle.job.label} [{handle.outcome}]: {exc}")
                failures += 1

    mismatches = 0
    for result in results:
        verdict = ""
        if args.verify:
            reference = solo_run(
                result.job, params=params, shape=result.partition.shape
            )
            if result.identical_to(reference):
                verdict = "  solo-identical"
            else:
                verdict = "  SOLO MISMATCH"
                mismatches += 1
        origin = result.partition.origin
        print(
            f"  {result.job.label:<44} partition ({origin[0]},{origin[1]}) "
            f"{result.cycles:>10} cycles  q={result.queue_seconds:.3f}s"
            f"{verdict}"
        )

    accounts = sched.accounts
    reconciled = accounts.reconcile()
    print()
    print(format_tenant_table(accounts.tenant_rows()))
    print()
    print(
        f"fairness (Jain) {accounts.fairness():.3f}   "
        f"concurrency speedup {accounts.concurrency_speedup:.2f}x   "
        f"aggregate {accounts.aggregate_mflops:.1f} Mflops   "
        f"ledger {'reconciled' if reconciled else 'OUT OF BALANCE'}"
    )
    if args.json:
        payload = dict(accounts.to_dict())
        payload["verified_bit_identical"] = args.verify and mismatches == 0
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text + "\n", encoding="utf-8")
            print(f"report written to {args.json}")
    if failures or mismatches or not reconciled:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="The Connection Machine Convolution Compiler, reproduced.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile a stencil source file")
    p_compile.add_argument("file")
    p_compile.add_argument("--nodes", type=int, default=16)
    p_compile.add_argument(
        "--strategy",
        choices=("paper", "optimal"),
        default="paper",
        help="ring-sizing strategy: the paper's heuristic or the "
        "LCM-minimizing dynamic program",
    )
    p_compile.set_defaults(func=cmd_compile)

    p_bench = sub.add_parser("bench", help="time a gallery pattern")
    p_bench.add_argument("pattern")
    p_bench.add_argument("--subgrid", type=_parse_shape, default=(256, 256))
    p_bench.add_argument("--nodes", type=int, default=16)
    p_bench.add_argument("--iterations", type=int, default=100)
    p_bench.set_defaults(func=cmd_bench)

    p_fig = sub.add_parser("figure1", help="print the Figure 1 decomposition")
    p_fig.add_argument("--shape", type=_parse_shape, default=(256, 256))
    p_fig.add_argument("--nodes", type=int, default=16)
    p_fig.set_defaults(func=cmd_figure1)

    p_gallery = sub.add_parser("gallery", help="list built-in patterns")
    p_gallery.set_defaults(func=cmd_gallery)

    p_reproduce = sub.add_parser(
        "reproduce", help="regenerate the headline paper-vs-measured numbers"
    )
    p_reproduce.set_defaults(func=cmd_reproduce)

    p_validate = sub.add_parser(
        "validate", help="cross-validate the execution semantics"
    )
    p_validate.add_argument("--nodes", type=int, default=4)
    p_validate.add_argument("--seed", type=int, default=0)
    p_validate.set_defaults(func=cmd_validate)

    p_lint = sub.add_parser(
        "lint", help="lint stencil Fortran with source-span diagnostics"
    )
    p_lint.add_argument("files", nargs="+")
    p_lint.add_argument(
        "--max-halo",
        type=int,
        default=None,
        help="halo-reach ceiling for RS101 (default 16)",
    )
    p_lint.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write machine-readable diagnostics ('-' for stdout)",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_verify = sub.add_parser(
        "verify", help="statically verify every gallery plan"
    )
    p_verify.add_argument(
        "--strategy",
        choices=("paper", "optimal", "both"),
        default="both",
        help="ring-sizing strategies to sweep",
    )
    p_verify.add_argument("--nodes", type=int, default=16)
    p_verify.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write machine-readable diagnostics ('-' for stdout)",
    )
    p_verify.set_defaults(func=cmd_verify)

    p_race = sub.add_parser(
        "racecheck",
        help="statically verify the threaded control plane's lock "
        "discipline (RS701-RS706)",
    )
    p_race.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the installed "
        "repro package)",
    )
    p_race.add_argument(
        "--graph",
        action="store_true",
        help="also print the inferred lock-order graph",
    )
    p_race.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write machine-readable diagnostics ('-' for stdout)",
    )
    p_race.set_defaults(func=cmd_racecheck)

    p_chaos = sub.add_parser(
        "chaos", help="run a seeded hard-fault survival campaign"
    )
    p_chaos.add_argument(
        "--seeds",
        type=_parse_seeds,
        default=(1, 2, 3, 4, 5),
        help="seeds to sweep: '1,2,3' or '1-5' (default 1-5)",
    )
    p_chaos.add_argument("--nodes", type=int, default=4)
    p_chaos.add_argument("--iterations", type=int, default=6)
    p_chaos.add_argument(
        "--spares", type=int, default=4, help="spare nodes per machine"
    )
    p_chaos.add_argument(
        "--service",
        action="store_true",
        help="run the service chaos campaign instead: worker crashes, "
        "job hangs, tenant storms, and SIGKILL/journal-resume trials "
        "against the scheduler's fault-containment invariants",
    )
    p_chaos.add_argument(
        "--sdc",
        action="store_true",
        help="run the silent-data-corruption campaign instead: seeded "
        "bit-flips in resident result tiles under the ABFT checksum "
        "verifier, asserting 100%% detection, forward correction of "
        "single-cell damage without replay, ladder fallback for "
        "multi-cell damage, and exact cycle reconciliation",
    )
    p_chaos.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write the machine-readable report ('-' for stdout)",
    )
    p_chaos.set_defaults(func=cmd_chaos)

    p_serve = sub.add_parser(
        "serve", help="run a multi-tenant stencil job file"
    )
    p_serve.add_argument(
        "--jobs", required=True, metavar="FILE", help="jobs.json to run"
    )
    p_serve.add_argument(
        "--nodes", type=int, default=None, help="pool size (overrides file)"
    )
    p_serve.add_argument(
        "--spare-rows",
        type=int,
        default=None,
        help="node-grid rows reserved as the service spare pool",
    )
    p_serve.add_argument(
        "--policy", choices=("first_fit", "best_fit"), default="first_fit"
    )
    p_serve.add_argument(
        "--timeout", type=float, default=600.0, help="per-job wait (seconds)"
    )
    p_serve.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="append-only JSONL job journal; re-running against an "
        "existing journal resumes, replaying completed jobs instead of "
        "re-running them",
    )
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=60.0,
        help="per-attempt wall-clock deadline in seconds (default 60)",
    )
    p_serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts per job before a crash/hang records its typed "
        "failure (default 3)",
    )
    p_serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive failures that quarantine a tenant (default 3)",
    )
    p_serve.add_argument(
        "--queue-depth",
        type=int,
        default=0,
        help="queue watermark for overload shedding (0 = unbounded)",
    )
    p_serve.add_argument(
        "--abft",
        action="store_true",
        help="arm the ABFT silent-corruption verifier on every job "
        "(equivalent to abft=true on each job spec): result stacks "
        "are checksum-sealed each pass and single corrupted words "
        "forward-corrected in place",
    )
    p_serve.add_argument(
        "--no-verify",
        dest="verify",
        action="store_false",
        help="skip the solo-run bit-identity check",
    )
    p_serve.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write the machine-readable ledger ('-' for stdout)",
    )
    p_serve.set_defaults(func=cmd_serve)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
