"""repro: the Connection Machine Convolution Compiler, reproduced.

A full-system reproduction of Bromley, Heller, McNerney & Steele,
"Fortran at Ten Gigaflops: The Connection Machine Convolution Compiler"
(PLDI 1991): the Fortran 90 and Lisp front ends, the stencil recognizer,
the multistencil/ring-buffer register allocator and code generator, and
a cycle-level simulator of the CM-2 node datapath with the run-time
library (decomposition, halo exchange, strip mining) on top.

Quick start::

    import numpy as np
    from repro import CM2, MachineParams, CMArray, compile_fortran, apply_stencil

    machine = CM2(MachineParams(num_nodes=16))
    compiled = compile_fortran(
        "R = C1 * CSHIFT(X, 1, -1) + C2 * CSHIFT(X, 2, -1) + C3 * X"
        " + C4 * CSHIFT(X, 2, +1) + C5 * CSHIFT(X, 1, +1)"
    )
    x = CMArray.from_numpy("X", machine, np.random.rand(256, 256).astype("f4"))
    coeffs = {name: CMArray.from_numpy(name, machine,
                                       np.random.rand(256, 256).astype("f4"))
              for name in compiled.pattern.coefficient_names()}
    run = apply_stencil(compiled, x, coeffs, iterations=100)
    print(run.describe())
"""

from .compiler import (
    CompiledStencil,
    StencilCompileError,
    compile_defstencil,
    compile_fortran,
    compile_stencil,
)
from .machine import CM2, FULL_CM2, SIXTEEN_NODE, MachineParams
from .runtime import (
    BatchStencilRun,
    CMArray,
    CMBatch,
    FaultError,
    FaultInjector,
    FaultStats,
    FilterCost,
    ResiliencePolicy,
    StencilRun,
    apply_stencil,
    apply_stencil_batch,
    make_stencil_function,
    make_subroutine,
)
from .stencil import StencilPattern, gallery
from . import testing

__version__ = "1.0.0"

__all__ = [
    "BatchStencilRun",
    "CM2",
    "CMArray",
    "CMBatch",
    "CompiledStencil",
    "FilterCost",
    "FULL_CM2",
    "FaultError",
    "FaultInjector",
    "FaultStats",
    "MachineParams",
    "ResiliencePolicy",
    "SIXTEEN_NODE",
    "StencilCompileError",
    "StencilPattern",
    "StencilRun",
    "apply_stencil",
    "apply_stencil_batch",
    "compile_defstencil",
    "make_stencil_function",
    "make_subroutine",
    "compile_fortran",
    "compile_stencil",
    "gallery",
    "testing",
    "__version__",
]
