"""Problem generators for tests, benchmarks, and downstream users.

Building a stencil problem takes four coordinated pieces (a machine, a
source array, one coefficient array per statement name, a compiled
plan); these helpers assemble them with reproducible random data and
hand back everything needed to run and to check the answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .baseline.reference import reference_stencil
from .compiler.driver import compile_stencil
from .compiler.plan import CompiledStencil
from .machine.machine import CM2
from .machine.params import MachineParams
from .runtime.cm_array import CMArray
from .runtime.stencil_op import StencilRun, apply_stencil
from .stencil.pattern import StencilPattern


@dataclass
class StencilProblem:
    """A fully assembled stencil problem plus its oracle."""

    pattern: StencilPattern
    compiled: CompiledStencil
    machine: CM2
    source: CMArray
    coefficients: Dict[str, CMArray]
    host_source: np.ndarray
    host_coefficients: Dict[str, np.ndarray]

    def run(self, *, exact: bool = False, iterations: int = 1) -> StencilRun:
        return apply_stencil(
            self.compiled,
            self.source,
            self.coefficients,
            iterations=iterations,
            exact=exact,
        )

    def expected(self) -> np.ndarray:
        """The pure-numpy reference result (bitwise oracle)."""
        return reference_stencil(
            self.pattern, self.host_source, self.host_coefficients
        )

    def check(self, run: StencilRun) -> bool:
        """Whether a run's result matches the oracle bit for bit."""
        return np.array_equal(run.result.to_numpy(), self.expected())


def random_problem(
    pattern: StencilPattern,
    *,
    num_nodes: int = 4,
    global_shape: Tuple[int, int] = (16, 24),
    seed: int = 0,
    params: Optional[MachineParams] = None,
) -> StencilProblem:
    """Compile a pattern and populate a machine with random data for it."""
    params = params or MachineParams(num_nodes=num_nodes)
    machine = CM2(params)
    rng = np.random.default_rng(seed)
    host_source = rng.standard_normal(global_shape).astype(np.float32)
    host_coefficients = {
        name: rng.standard_normal(global_shape).astype(np.float32)
        for name in pattern.coefficient_names()
    }
    compiled = compile_stencil(pattern, params)
    source = CMArray.from_numpy(pattern.source, machine, host_source)
    coefficients = {
        name: CMArray.from_numpy(name, machine, data)
        for name, data in host_coefficients.items()
    }
    return StencilProblem(
        pattern=pattern,
        compiled=compiled,
        machine=machine,
        source=source,
        coefficients=coefficients,
        host_source=host_source,
        host_coefficients=host_coefficients,
    )
