"""Block decomposition of arrays onto the node grid (paper Figure 1).

All arrays in a stencil computation are the same size and shape and are
divided among the nodes in the same manner: the nodes form a 2-D grid and
each node holds a 2-D subgrid.  A 256x256 array on 16 nodes (a 4x4 grid)
gives each node a 64x64 subgrid -- the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from ..machine.geometry import NodeCoord
from ..machine.machine import CM2


@dataclass(frozen=True)
class Block:
    """The index ranges (0-based, half-open) one node owns."""

    coord: NodeCoord
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.row_stop - self.row_start, self.col_stop - self.col_start)

    def fortran_ranges(self) -> str:
        """The 1-based inclusive ranges of Figure 1, e.g. ``A(1:64,1:64)``."""
        return (
            f"A({self.row_start + 1}:{self.row_stop},"
            f"{self.col_start + 1}:{self.col_stop})"
        )

    def slices(self) -> Tuple[slice, slice]:
        return (
            slice(self.row_start, self.row_stop),
            slice(self.col_start, self.col_stop),
        )


class Decomposition:
    """A block decomposition of one global array shape onto a node grid.

    The CM-2 is synchronous SIMD: every node executes the same instruction
    stream, so every subgrid must have the same shape -- the global extents
    must divide evenly by the node grid.
    """

    def __init__(self, global_shape: Tuple[int, int], machine: CM2) -> None:
        rows, cols = global_shape
        grid_rows, grid_cols = machine.shape
        if rows % grid_rows or cols % grid_cols:
            raise ValueError(
                f"global shape {global_shape} does not divide evenly over "
                f"the {grid_rows}x{grid_cols} node grid (SIMD execution "
                "requires identical subgrids)"
            )
        self.global_shape = (rows, cols)
        self.machine = machine
        self.subgrid_shape = (rows // grid_rows, cols // grid_cols)

    @property
    def subgrid_rows(self) -> int:
        return self.subgrid_shape[0]

    @property
    def subgrid_cols(self) -> int:
        return self.subgrid_shape[1]

    @property
    def points_per_node(self) -> int:
        return self.subgrid_rows * self.subgrid_cols

    def block(self, coord: NodeCoord) -> Block:
        """The global index ranges owned by the node at ``coord``."""
        sr, sc = self.subgrid_shape
        return Block(
            coord=coord,
            row_start=coord.row * sr,
            row_stop=(coord.row + 1) * sr,
            col_start=coord.col * sc,
            col_stop=(coord.col + 1) * sc,
        )

    def blocks(self) -> Iterator[Block]:
        for node in self.machine.nodes():
            yield self.block(node.coord)

    def scatter(self, array: np.ndarray) -> "dict[NodeCoord, np.ndarray]":
        """Split a global array into per-node subgrids."""
        if tuple(array.shape) != self.global_shape:
            raise ValueError(
                f"array shape {array.shape} does not match the "
                f"decomposition's global shape {self.global_shape}"
            )
        return {
            block.coord: np.array(array[block.slices()], dtype=np.float32)
            for block in self.blocks()
        }

    def gather(self, subgrids: "dict[NodeCoord, np.ndarray]") -> np.ndarray:
        """Reassemble per-node subgrids into a global array."""
        out = np.zeros(self.global_shape, dtype=np.float32)
        for block in self.blocks():
            out[block.slices()] = subgrids[block.coord]
        return out

    def figure1_text(self) -> str:
        """Render the decomposition as the paper's Figure 1 table."""
        grid_rows, grid_cols = self.machine.shape
        lines = [
            f"Division of a {self.global_shape[0]}x{self.global_shape[1]} "
            f"array among {self.machine.num_nodes} nodes"
        ]
        for row in range(grid_rows):
            cells = [
                self.block(NodeCoord(row, col)).fortran_ranges()
                for col in range(grid_cols)
            ]
            lines.append(" | ".join(cells))
        return "\n".join(lines)
