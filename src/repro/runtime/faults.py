"""Fault injection, detection, and recovery for the run-time data path.

The CM-2's memory and NEWS network were engineered around ECC and
parity because at 64K processors over hours-long runs, silent
corruption is a certainty, not a risk.  The simulated runtime models
the same reality: a seeded :class:`FaultInjector` can corrupt or drop
halo messages, flip bits in the temporal-blocking ping-pong stacks
between sub-iterations, and poison a node's tile in the fast executor
-- and a detection + recovery layer threaded through
:mod:`repro.runtime.halo`, :mod:`repro.runtime.executor`, and
:mod:`repro.runtime.stencil_op` guarantees that every injected fault is
either recovered *bit-identically* or surfaced as a typed
:class:`FaultError`.  Silent wrong numbers are the one outcome the
design rules out.

Detection:

* per-message checksums on both halo paths (shallow and deep): after
  every exchange the received bands are checksummed against what the
  senders hold;
* a parity word sealed over each sub-iteration's valid region in the
  blocked executor, verified before the next sub-iteration reads it;
* NaN/Inf guards on the fast executor's result and on each temporal
  block's output.

Recovery (in escalation order):

1. bounded retry with capped exponential backoff for failed exchanges
   and executor passes -- every attempt is charged real communication
   or compute cycles;
2. rollback to a periodic checkpoint
   (:meth:`repro.machine.memory.MachineStorage.checkpoint` /
   ``restore``) and replay of the iterations since;
3. a graceful-degradation ladder: blocked fast path -> unblocked fast
   path -> exact per-node executor.  All three rungs are bit-identical
   in float32, so stepping down changes cost, never results.

All fault, retry, checkpoint, and degradation events are accounted in a
:class:`FaultStats` carried on the resulting
:class:`~repro.runtime.stencil_op.StencilRun`, and the
:class:`FaultGuard` doubles as the chaos run's cycle accountant, so a
degraded run reports honest (lower) gigaflops.

Hard faults
-----------

Beyond the transient kinds, the injector can break *hardware*: kill a
node (``NODE_DEAD`` -- its memory is lost and it stops answering),
sever a grid link (``LINK_DOWN`` -- every message crossing it arrives
corrupted until the runtime routes around it), or degrade a node
(``NODE_SLOW`` -- it keeps computing correctly but overruns every
exchange deadline).  These conditions persist in the machine's
:class:`~repro.machine.health.MachineHealth` ledger until repaired.

The :class:`HealthMonitor` detects them from exchange behavior alone:
a dead node misses the exchange deadline and fails its probes (charged
real timeout + probe cycles, before any data moves); a dead link shows
up as repeated checksum failures on the same route, confirmed by a
probe and then routed around (each later exchange pays the detour); a
slow node overruns deadlines until enough confirmations trigger a
*live* migration.  Repair is **spare-node remapping**: when the machine
was configured with spares (``CM2(params, spares=...)``), the guard
migrates the lost logical coordinate onto a spare, rewrites the
logical->physical :class:`~repro.machine.geometry.CoordinateMap`,
restores the lost tile from the genesis + periodic checkpoints, and
replays -- bit-identically in float32.  With no spare (or an exhausted
remap budget) the run raises a typed :class:`NoSpareError`; silent
corruption remains impossible.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import ClassVar, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..machine.health import link_key
from ..machine.memory import parity_word
from ..verify import lockdep


class FaultError(Exception):
    """Base of every typed fault surfaced by the resilient runtime."""


class HaloChecksumError(FaultError):
    """A halo message's checksum did not match what the sender holds."""


class ParityError(FaultError):
    """A sealed scratch/ping-pong region failed its parity check."""


class PoisonedResultError(FaultError):
    """An executor pass produced non-finite values under guard."""


class RetryExhaustedError(FaultError):
    """An exchange kept failing verification past the retry budget."""


class DegradationExhaustedError(FaultError):
    """Every rung of the degradation ladder failed (defensive; the
    exact rung's datapath is modeled as ECC-protected and does not
    fault, so reaching this indicates persistent exchange failure)."""


class NonFiniteInputError(FaultError, ValueError):
    """An input array handed to ``apply_stencil(check_finite=True)``
    contains NaN or Inf."""


class NodeDeadError(FaultError):
    """A node missed the exchange deadline and failed its probes.

    Carries the logical ``coord`` ``(row, col)`` so the recovery path
    knows which subgrid tile must be migrated onto a spare.
    """

    def __init__(self, coord: Tuple[int, int], message: str) -> None:
        super().__init__(message)
        self.coord = coord


class LinkDownError(FaultError):
    """A grid link is confirmed dead and no detour exists (the grid is
    only one node wide along the perpendicular axis)."""


class NoSpareError(FaultError):
    """A dead node needs a remap but no spare remains (the machine was
    configured without spares, the pool is empty, or the policy's remap
    budget is exhausted)."""


class SdcUncorrectableError(FaultError):
    """ABFT found residual damage it cannot forward-correct: more than
    one violated row/column checksum per tile, or mismatched residual
    masks.  The caller falls back to the checkpoint/rollback ladder."""


class FaultKind(str, Enum):
    """The injectable fault classes."""

    #: Flip one bit of one element of a received halo message.
    HALO_CORRUPT = "halo_corrupt"
    #: Drop a halo message: the destination band shows stale zeros.
    HALO_DROP = "halo_drop"
    #: Flip one bit somewhere in a ping-pong scratch stack between two
    #: temporal-block sub-iterations.
    SCRATCH_BITFLIP = "scratch_bitflip"
    #: Overwrite one node's tile of the fast executor's result with NaN.
    NODE_POISON = "node_poison"
    #: Kill a node: its memory is lost and it stops answering exchanges.
    NODE_DEAD = "node_dead"
    #: Sever a grid link: messages crossing it arrive corrupted until
    #: the runtime routes around it.
    LINK_DOWN = "link_down"
    #: Degrade a node: results stay correct but every exchange deadline
    #: is overrun until the runtime live-migrates it to a spare.
    NODE_SLOW = "node_slow"
    #: Silent data corruption: flip mantissa/exponent bits of resident
    #: result tiles *between* parity seals, bypassing every message
    #: checksum.  Only the ABFT row/column residuals can see it, so
    #: injecting it requires ``ResiliencePolicy.abft=True``.
    SDC = "sdc"


#: The message/memory corruption kinds of PR 3: one bad datum, healed
#: by retry/rollback alone.
TRANSIENT_FAULT_KINDS: Tuple[str, ...] = (
    FaultKind.HALO_CORRUPT.value,
    FaultKind.HALO_DROP.value,
    FaultKind.SCRATCH_BITFLIP.value,
    FaultKind.NODE_POISON.value,
)

#: Persistent hardware conditions: they stay true until the machine is
#: reconfigured (spare-node remap or link reroute).
HARD_FAULT_KINDS: Tuple[str, ...] = (
    FaultKind.NODE_DEAD.value,
    FaultKind.LINK_DOWN.value,
    FaultKind.NODE_SLOW.value,
)

ALL_FAULT_KINDS: Tuple[str, ...] = tuple(kind.value for kind in FaultKind)


class ServiceFaultKind(str, Enum):
    """The service-plane fault classes: they break the *orchestration*
    layer (workers, queues, tenants), never the data path, so none of
    them can change a job's bits -- only whether and when it runs."""

    #: The worker thread running a job dies mid-flight; its partition
    #: leaks until the supervisor reclaims it and re-enqueues the job.
    WORKER_CRASH = "worker_crash"
    #: A job stops making progress: its worker blocks until the
    #: supervisor aborts it at the wall-clock deadline.
    JOB_HANG = "job_hang"
    #: One tenant floods the queue with a burst of low-priority jobs,
    #: exercising watermark shedding and admission control.
    TENANT_STORM = "tenant_storm"


SERVICE_FAULT_KINDS: Tuple[str, ...] = tuple(
    kind.value for kind in ServiceFaultKind
)


@dataclass(frozen=True)
class FaultEvent:
    """One injected or detected fault occurrence."""

    kind: str
    site: str
    injected: bool
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "site": self.site,
            "injected": self.injected,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        return cls(
            kind=str(data["kind"]),
            site=str(data["site"]),
            injected=bool(data["injected"]),
            detail=str(data.get("detail", "")),
        )


@dataclass
class FaultStats:
    """Complete chaos-run accounting, carried on ``StencilRun``.

    All-zero (see :meth:`all_zero`) whenever injection and guarding are
    disabled -- the default run path never touches this object.
    """

    injected: Dict[str, int] = field(default_factory=dict)
    detected: Dict[str, int] = field(default_factory=dict)
    #: Exchange attempts beyond each first try.
    retries: int = 0
    #: Cycles of every retried exchange attempt plus backoff stalls.
    retry_cycles: int = 0
    #: Elements moved by retried exchange attempts.
    retry_elements: int = 0
    #: Executor passes re-run after a detected fault.
    recomputes: int = 0
    checkpoints: int = 0
    checkpoint_cycles: int = 0
    rollbacks: int = 0
    #: Iterations (or block sub-iterations) computed more than once.
    replayed_iterations: int = 0
    #: Ladder steps taken, e.g. ``("blocked->fast", "fast->exact")``.
    degradations: Tuple[str, ...] = ()
    # --- hard-fault recovery buckets -----------------------------------
    #: Health probes sent (dead-node confirmation, link diagnosis).
    probes: int = 0
    probe_cycles: int = 0
    #: Exchange deadlines missed outright (dead participant).
    timeouts: int = 0
    #: Deadline overruns caused by a degraded (slow) participant.
    slow_overruns: int = 0
    #: Cycles lost to missed deadlines and overruns together.
    timeout_cycles: int = 0
    #: Dead links confirmed and routed around.
    reroutes: int = 0
    #: Extra-hop cycles paid by exchanges crossing rerouted links.
    detour_cycles: int = 0
    #: Dead nodes replaced by spares (checkpoint-restore migrations).
    remaps: int = 0
    #: Slow nodes replaced by spares without rollback.
    live_migrations: int = 0
    migrated_words: int = 0
    migration_cycles: int = 0
    #: Executor cycles of failed or repeated passes (recovery compute).
    recompute_cycles: int = 0
    #: Exchange cycles of replayed (post-rollback) iterations.
    replay_comm_cycles: int = 0
    #: Executor cycles of replayed (post-rollback) iterations.
    replay_compute_cycles: int = 0
    # --- ABFT buckets --------------------------------------------------
    #: Row/column checksum seals taken over result stacks.
    abft_seals: int = 0
    #: Residual verifications of sealed stacks.
    abft_verifies: int = 0
    #: Cycles of seals + verifies together: the always-on ABFT overhead,
    #: a bucket of its own (NOT recovery -- it is paid even fault-free).
    abft_cycles: int = 0
    #: Corrupted words localized and forward-corrected in place.
    sdc_corrections: int = 0
    #: Cycles of those in-place corrections (recovery compute).
    sdc_correction_cycles: int = 0
    events: List[FaultEvent] = field(default_factory=list)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def total_detected(self) -> int:
        return sum(self.detected.values())

    #: The plain integer tallies, for all_zero / serialization.
    _COUNTER_FIELDS: ClassVar[Tuple[str, ...]] = (
        "retries",
        "retry_cycles",
        "retry_elements",
        "recomputes",
        "checkpoints",
        "checkpoint_cycles",
        "rollbacks",
        "replayed_iterations",
        "probes",
        "probe_cycles",
        "timeouts",
        "slow_overruns",
        "timeout_cycles",
        "reroutes",
        "detour_cycles",
        "remaps",
        "live_migrations",
        "migrated_words",
        "migration_cycles",
        "recompute_cycles",
        "replay_comm_cycles",
        "replay_compute_cycles",
        "abft_seals",
        "abft_verifies",
        "abft_cycles",
        "sdc_corrections",
        "sdc_correction_cycles",
    )

    def all_zero(self) -> bool:
        """True when nothing fault-related happened at all."""
        return (
            not self.injected
            and not self.detected
            and not self.events
            and not self.degradations
            and all(getattr(self, name) == 0 for name in self._COUNTER_FIELDS)
        )

    def describe(self) -> str:
        parts = [
            f"{self.total_injected} injected",
            f"{self.total_detected} detected",
            f"{self.retries} retries",
            f"{self.rollbacks} rollbacks",
        ]
        if self.reroutes:
            parts.append(f"{self.reroutes} reroutes")
        if self.remaps or self.live_migrations:
            parts.append(
                f"{self.remaps + self.live_migrations} remaps"
                f" ({self.live_migrations} live)"
            )
        if self.sdc_corrections:
            parts.append(
                f"{self.sdc_corrections} forward-corrected"
            )
        if self.degradations:
            parts.append("degraded " + ", ".join(self.degradations))
        return "; ".join(parts)

    def recovery_comm_cycles(self) -> int:
        """Every communication cycle beyond the fault-free closed form:
        retries+backoff, probes, timeouts/overruns, detours, migrations,
        and replayed exchanges.  ``guard.comm_cycles`` minus this equals
        the fault-free total exactly (the reconciliation invariant the
        chaos campaign checks)."""
        return (
            self.retry_cycles
            + self.probe_cycles
            + self.timeout_cycles
            + self.detour_cycles
            + self.migration_cycles
            + self.replay_comm_cycles
        )

    def recovery_compute_cycles(self) -> int:
        """Every executor cycle beyond the fault-free closed form:
        checkpoint copies, failed/repeated passes, replays, and in-place
        SDC corrections.  The always-on ABFT seal/verify overhead is
        *not* recovery -- reconcile it via :attr:`abft_cycles`."""
        return (
            self.checkpoint_cycles
            + self.recompute_cycles
            + self.replay_compute_cycles
            + self.sdc_correction_cycles
        )

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "injected": dict(self.injected),
            "detected": dict(self.detected),
            "degradations": list(self.degradations),
            "events": [event.to_dict() for event in self.events],
        }
        for name in self._COUNTER_FIELDS:
            data[name] = int(getattr(self, name))
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultStats":
        stats = cls(
            injected={str(k): int(v) for k, v in data.get("injected", {}).items()},
            detected={str(k): int(v) for k, v in data.get("detected", {}).items()},
            degradations=tuple(data.get("degradations", ())),
            events=[
                FaultEvent.from_dict(event)
                for event in data.get("events", [])
            ],
        )
        for name in cls._COUNTER_FIELDS:
            setattr(stats, name, int(data.get(name, 0)))
        return stats


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the detection + recovery layer.

    Attributes:
        max_retries: exchange re-attempts (and executor recomputes)
            after the first try before escalating.
        backoff_base_cycles: stall charged before the first retry;
            doubles per retry.
        backoff_cap_cycles: ceiling of the per-retry backoff stall.
        checkpoint_interval: snapshot the live iterate every this many
            iterations (0 disables periodic checkpoints; rollback then
            replays from the start, where the untouched source array is
            the implicit checkpoint).
        max_replays: rollback-and-replay attempts (per run in the
            iterated loop, per block in the blocked path) before the
            ladder steps down a rung.
        check_finite_results: guard executor outputs against NaN/Inf.
            Note that legitimately overflowing data also trips this
            guard; recovery then degrades to the exact rung, whose
            output is trusted verbatim -- results stay bit-identical,
            only the chaos run's cost grows.
        checkpoint_cycles_per_word: modeled cost of snapshotting one
            word per node (local memory copy bandwidth).
        abft: maintain row/column XOR checksum vectors over the result
            stack and verify them after every iteration (or temporal
            block).  A single corrupted word is localized by
            intersecting the violated row and column residuals and
            corrected in place -- forward recovery, zero rollback,
            zero replay; multi-cell damage falls back to the
            checkpoint/rollback ladder, so ``abft=True`` requires
            ``max_replays >= 1``.
        abft_cycles_per_word: modeled cost of streaming one word
            through the row+column XOR reductions, charged per seal
            and per verify (a fraction of a cycle: the checksum rides
            the same SIMD pass as the stencil itself).
        sdc_correction_cycles: modeled cost of localizing and
            XOR-correcting one corrupted word (residual intersection
            plus one write-back).

    Hard-fault attributes:

    Attributes:
        exchange_deadline_cycles: cycles an exchange waits for every
            participant before declaring a timeout; charged in full when
            a dead node misses it.
        probe_cycles: cost of one health probe (a minimal round-trip on
            the router, used to confirm a dead node or diagnose a link).
        probe_attempts: unanswered probes required to confirm a node
            dead after it misses the deadline.
        link_failure_threshold: checksum failures on the *same physical
            route* before the monitor probes the link and, if dead,
            routes around it.
        slow_overrun_cycles: deadline overrun charged per exchange per
            degraded (slow) participant until it is live-migrated.
        slow_confirmations: overruns required before a slow node is
            confirmed and live migration is attempted.
        max_remaps: spare-node remaps (dead-node migrations plus live
            migrations) allowed per run before :class:`NoSpareError`.
        migration_cycles_per_word: modeled cost of moving one word of a
            node's state onto its spare (router bandwidth, cube-wise
            path).

    All fields are validated at construction; nonsense values (negative
    retries, zero backoff, ...) raise :class:`ValueError` immediately
    instead of misbehaving mid-recovery.
    """

    max_retries: int = 3
    backoff_base_cycles: int = 64
    backoff_cap_cycles: int = 4096
    checkpoint_interval: int = 4
    max_replays: int = 2
    check_finite_results: bool = True
    checkpoint_cycles_per_word: float = 1.0
    abft: bool = False
    abft_cycles_per_word: float = 0.25
    sdc_correction_cycles: int = 64
    exchange_deadline_cycles: int = 4096
    probe_cycles: int = 256
    probe_attempts: int = 2
    link_failure_threshold: int = 2
    slow_overrun_cycles: int = 512
    slow_confirmations: int = 3
    max_remaps: int = 2
    migration_cycles_per_word: float = 1.0

    def __post_init__(self) -> None:
        def require(ok: bool, what: str) -> None:
            if not ok:
                raise ValueError(f"ResiliencePolicy: {what}")

        require(self.max_retries >= 0,
                f"max_retries must be >= 0, got {self.max_retries}")
        require(self.backoff_base_cycles >= 1,
                f"backoff_base_cycles must be >= 1 (a zero backoff would "
                f"spin on a persistent fault), got {self.backoff_base_cycles}")
        require(self.backoff_cap_cycles >= self.backoff_base_cycles,
                f"backoff_cap_cycles ({self.backoff_cap_cycles}) must be >= "
                f"backoff_base_cycles ({self.backoff_base_cycles})")
        require(self.checkpoint_interval >= 0,
                f"checkpoint_interval must be >= 0 (0 disables periodic "
                f"checkpoints), got {self.checkpoint_interval}")
        require(self.max_replays >= 0,
                f"max_replays must be >= 0, got {self.max_replays}")
        require(self.checkpoint_cycles_per_word > 0,
                f"checkpoint_cycles_per_word must be positive, got "
                f"{self.checkpoint_cycles_per_word}")
        require(not (self.abft and self.max_replays == 0),
                "contradictory knobs: abft=True needs the rollback "
                "ladder as its multi-cell fallback, but max_replays=0 "
                "disables it; set max_replays >= 1 or abft=False")
        require(self.abft_cycles_per_word > 0,
                f"abft_cycles_per_word must be positive, got "
                f"{self.abft_cycles_per_word}")
        require(self.sdc_correction_cycles >= 1,
                f"sdc_correction_cycles must be >= 1, got "
                f"{self.sdc_correction_cycles}")
        require(self.exchange_deadline_cycles >= 1,
                f"exchange_deadline_cycles must be >= 1, got "
                f"{self.exchange_deadline_cycles}")
        require(self.probe_cycles >= 1,
                f"probe_cycles must be >= 1, got {self.probe_cycles}")
        require(self.probe_attempts >= 1,
                f"probe_attempts must be >= 1, got {self.probe_attempts}")
        require(self.link_failure_threshold >= 1,
                f"link_failure_threshold must be >= 1, got "
                f"{self.link_failure_threshold}")
        require(self.slow_overrun_cycles >= 0,
                f"slow_overrun_cycles must be >= 0, got "
                f"{self.slow_overrun_cycles}")
        require(self.slow_confirmations >= 1,
                f"slow_confirmations must be >= 1, got "
                f"{self.slow_confirmations}")
        require(self.max_remaps >= 0,
                f"max_remaps must be >= 0, got {self.max_remaps}")
        require(self.migration_cycles_per_word > 0,
                f"migration_cycles_per_word must be positive, got "
                f"{self.migration_cycles_per_word}")

    def backoff_cycles(self, attempt: int) -> int:
        """Capped exponential backoff before retry ``attempt`` (1-based)."""
        return min(
            self.backoff_base_cycles << max(attempt - 1, 0),
            self.backoff_cap_cycles,
        )


@dataclass(frozen=True)
class HardFaultSpec:
    """One scripted hard fault: break this hardware at that exchange.

    ``at_exchange`` counts guarded exchanges (shallow and deep alike)
    from 0; ``(row, col)`` is the victim's *logical* coordinate.  For
    ``LINK_DOWN``, ``direction`` names which of the node's four grid
    links dies (``"N"``/``"S"``/``"W"``/``"E"``).
    """

    kind: str
    at_exchange: int
    row: int
    col: int
    direction: Optional[str] = None

    def __post_init__(self) -> None:
        kind = FaultKind(self.kind).value
        if kind not in HARD_FAULT_KINDS:
            raise ValueError(
                f"HardFaultSpec kind must be a hard fault "
                f"{HARD_FAULT_KINDS}, got {self.kind!r}"
            )
        if self.at_exchange < 0:
            raise ValueError(
                f"at_exchange must be >= 0, got {self.at_exchange}"
            )
        if kind == FaultKind.LINK_DOWN.value:
            if self.direction not in ("N", "S", "W", "E"):
                raise ValueError(
                    f"LINK_DOWN needs direction 'N'/'S'/'W'/'E', "
                    f"got {self.direction!r}"
                )
        elif self.direction is not None:
            raise ValueError(
                f"direction only applies to link_down, got "
                f"{self.direction!r} for {kind}"
            )


class FaultInjector:
    """A deterministic, seeded source of run-time data-path faults.

    ``rates`` maps fault kinds (:class:`FaultKind` or their string
    values) to per-opportunity probabilities.  Every draw comes from one
    ``numpy`` generator seeded with ``seed``, and the runtime consults
    the injector at a fixed sequence of sites, so a chaos run is exactly
    reproducible: same seed, same faults, same recovery path.
    ``max_faults`` bounds the total injections (None = unbounded).
    ``sdc_cells`` is how many words one SDC strike corrupts: 1 (the
    default) is the forward-correctable case; more forces the
    multi-cell damage that exercises the rollback fallback.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[Dict[object, float]] = None,
        max_faults: Optional[int] = None,
        schedule: Sequence[HardFaultSpec] = (),
        sdc_cells: int = 1,
    ) -> None:
        self.seed = int(seed)
        self.sdc_cells = max(1, int(sdc_cells))
        self.rates: Dict[FaultKind, float] = {}
        for kind, rate in (rates or {}).items():
            self.rates[FaultKind(kind)] = float(rate)
        self.max_faults = max_faults
        self.schedule: Tuple[HardFaultSpec, ...] = tuple(schedule)
        self._rng = np.random.default_rng(self.seed)
        self.injected: Dict[str, int] = {}
        self.events: List[FaultEvent] = []
        #: Guarded exchanges seen so far (the clock scripted hard
        #: faults are keyed on).
        self.exchange_index = 0

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def _fires(self, kind: FaultKind) -> bool:
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        if self.max_faults is not None and self.total_injected >= self.max_faults:
            return False
        return bool(self._rng.random() < rate)

    def _record(self, kind: FaultKind, site: str, detail: str) -> FaultEvent:
        event = FaultEvent(
            kind=kind.value, site=site, injected=True, detail=detail
        )
        self.injected[kind.value] = self.injected.get(kind.value, 0) + 1
        self.events.append(event)
        return event

    def _flip_bit(self, region: np.ndarray) -> str:
        """Flip one random bit of one element, in place."""
        index = np.unravel_index(
            int(self._rng.integers(region.size)), region.shape
        )
        bit = int(self._rng.integers(32))
        # A same-itemsize view aliases the region's memory even when it
        # is a non-contiguous slice of a larger stack.
        words = region.view(np.uint32)
        words[index] ^= np.uint32(1 << bit)
        return f"bit {bit} at {tuple(int(i) for i in index)}"

    # ------------------------------------------------------------------
    # Injection sites
    # ------------------------------------------------------------------

    def inject_halo(
        self, regions: Sequence[Tuple[str, np.ndarray]]
    ) -> List[FaultEvent]:
        """Corrupt and/or drop at most one halo message each.

        ``regions`` are the just-received message bands of one exchange,
        as ``(label, writable view)`` pairs.
        """
        events: List[FaultEvent] = []
        if self._fires(FaultKind.HALO_CORRUPT) and regions:
            label, region = regions[int(self._rng.integers(len(regions)))]
            if region.size:
                detail = self._flip_bit(region)
                events.append(
                    self._record(FaultKind.HALO_CORRUPT, label, detail)
                )
        if self._fires(FaultKind.HALO_DROP) and regions:
            label, region = regions[int(self._rng.integers(len(regions)))]
            if region.size:
                region[...] = 0.0
                events.append(
                    self._record(
                        FaultKind.HALO_DROP, label, "message never arrived"
                    )
                )
        return events

    def inject_scratch(
        self, buffers: Sequence[Tuple[str, np.ndarray]]
    ) -> List[FaultEvent]:
        """Maybe flip one bit in one ping-pong/scratch stack."""
        events: List[FaultEvent] = []
        if self._fires(FaultKind.SCRATCH_BITFLIP) and buffers:
            label, buffer = buffers[int(self._rng.integers(len(buffers)))]
            if buffer.size:
                detail = self._flip_bit(buffer)
                events.append(
                    self._record(FaultKind.SCRATCH_BITFLIP, label, detail)
                )
        return events

    def inject_sdc(
        self, regions: Sequence[Tuple[str, np.ndarray]]
    ) -> List[FaultEvent]:
        """Maybe silently corrupt a resident result stack.

        One strike flips one random mantissa/exponent bit in each of
        ``sdc_cells`` random words of one region -- after the executor
        ran and after every message checksum was checked, so nothing
        but the ABFT residuals can notice.  The sign bit (31) is never
        flipped: the paper's fault model is particle strikes on the
        FPU datapath and significand/exponent latches.
        """
        events: List[FaultEvent] = []
        if self._fires(FaultKind.SDC) and regions:
            label, region = regions[int(self._rng.integers(len(regions)))]
            if region.size:
                words = region.view(np.uint32)
                details = []
                for _ in range(self.sdc_cells):
                    index = np.unravel_index(
                        int(self._rng.integers(region.size)), region.shape
                    )
                    bit = int(self._rng.integers(31))
                    words[index] ^= np.uint32(1 << bit)
                    details.append(
                        f"bit {bit} at {tuple(int(i) for i in index)}"
                    )
                events.append(
                    self._record(FaultKind.SDC, label, "; ".join(details))
                )
        return events

    def inject_poison(self, result_stack: np.ndarray) -> List[FaultEvent]:
        """Maybe poison (NaN) one node's tile of a result stack.

        The node-grid axes sit at ``-4``/``-3``, so batched stacks with
        leading (batch, filter) axes poison the node's tile in *every*
        copy -- a dead FPU corrupts whatever it was computing.
        """
        events: List[FaultEvent] = []
        if self._fires(FaultKind.NODE_POISON):
            grid_rows, grid_cols = result_stack.shape[-4:-2]
            row = int(self._rng.integers(grid_rows))
            col = int(self._rng.integers(grid_cols))
            result_stack[..., row, col, :, :] = np.float32(np.nan)
            events.append(
                self._record(
                    FaultKind.NODE_POISON,
                    f"node({row},{col})",
                    "tile overwritten with NaN",
                )
            )
        return events

    def inject_hard(self, machine, site: str) -> List[FaultEvent]:
        """Maybe break hardware, at the start of one guarded exchange.

        Applies any scheduled :class:`HardFaultSpec` whose clock has
        come, then rolls the per-exchange dice for each hard kind with a
        configured rate.  Conditions land in ``machine.health`` (and a
        killed node's memory really is lost: its tile of every
        distributed stack is overwritten with NaN).
        """
        index = self.exchange_index
        self.exchange_index += 1
        events: List[FaultEvent] = []
        for spec in self.schedule:
            if spec.at_exchange == index:
                events.extend(
                    self._break_hardware(
                        machine,
                        FaultKind(spec.kind),
                        victim=(spec.row, spec.col, spec.direction),
                    )
                )
        for kind in (
            FaultKind.NODE_DEAD,
            FaultKind.LINK_DOWN,
            FaultKind.NODE_SLOW,
        ):
            if self._fires(kind):
                events.extend(self._break_hardware(machine, kind, None))
        return events

    def _break_hardware(
        self,
        machine,
        kind: FaultKind,
        victim: Optional[Tuple[int, int, Optional[str]]],
    ) -> List[FaultEvent]:
        grid_rows, grid_cols = machine.shape
        health = machine.health
        if kind in (FaultKind.NODE_DEAD, FaultKind.NODE_SLOW):
            if victim is None:
                row = int(self._rng.integers(grid_rows))
                col = int(self._rng.integers(grid_cols))
            else:
                row, col = victim[0] % grid_rows, victim[1] % grid_cols
            phys = machine.physical_id(row, col)
            if kind is FaultKind.NODE_DEAD:
                if health.node_dead(phys):
                    return []
                health.mark_node_dead(phys)
                self._trash_node_memory(machine, row, col)
                detail = f"physical node {phys} died; tile memory lost"
            else:
                if health.node_dead(phys) or health.node_slow(phys):
                    return []
                health.mark_node_slow(phys)
                detail = f"physical node {phys} degraded"
            return [self._record(kind, f"node({row},{col})", detail)]
        # LINK_DOWN: pick (or take) a node and one of its grid links.
        directions = []
        if grid_rows >= 2:
            directions.extend(["N", "S"])
        if grid_cols >= 2:
            directions.extend(["W", "E"])
        if victim is None:
            if not directions:
                return []
            row = int(self._rng.integers(grid_rows))
            col = int(self._rng.integers(grid_cols))
            direction = directions[int(self._rng.integers(len(directions)))]
        else:
            row, col = victim[0] % grid_rows, victim[1] % grid_cols
            direction = victim[2]
            if direction not in directions:
                return []
        if direction == "N":
            nbr, orientation = ((row - 1) % grid_rows, col), "v"
        elif direction == "S":
            nbr, orientation = ((row + 1) % grid_rows, col), "v"
        elif direction == "W":
            nbr, orientation = (row, (col - 1) % grid_cols), "h"
        else:
            nbr, orientation = (row, (col + 1) % grid_cols), "h"
        phys_a = machine.physical_id(row, col)
        phys_b = machine.physical_id(*nbr)
        if phys_a == phys_b or health.link_dead(phys_a, phys_b):
            return []
        health.mark_link_dead(phys_a, phys_b, orientation)
        lo, hi = sorted((phys_a, phys_b))
        return [
            self._record(
                FaultKind.LINK_DOWN,
                f"link node({row},{col}).{direction}",
                f"physical link {lo}<->{hi} severed",
            )
        ]

    def _trash_node_memory(self, machine, row: int, col: int) -> None:
        """A dead node's memory is gone: NaN its tile everywhere
        (batched stacks lose every leading-axis copy of the tile)."""
        for _, stack in machine.storage.tile_stacks():
            stack[..., row, col, :, :] = np.float32(np.nan)


class ServiceFaultInjector:
    """A deterministic, seeded source of service-plane faults.

    ``rates`` maps :class:`ServiceFaultKind` (or their string values)
    to per-opportunity probabilities.  Unlike the data-path injector,
    draws must be reproducible under *concurrency*: worker threads
    consult the injector in whatever order the host schedules them, so
    a shared RNG stream would make chaos runs unrepeatable.  Every draw
    is therefore a pure function of ``(seed, kind, site, attempt)`` --
    hashed independently -- and a campaign re-run with the same seed
    sees exactly the same crashes and hangs at the same jobs no matter
    how the threads interleave.  ``max_faults`` bounds total
    injections (None = unbounded).

    Lock discipline: the mutable tallies (``injected``, ``events``) are
    guarded by ``_lock``; the draw itself is pure.  Workers consult the
    injector outside the scheduler's condition lock, and the injector
    calls nothing that locks -- a leaf of the lock graph.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[Dict[object, float]] = None,
        max_faults: Optional[int] = None,
    ) -> None:
        self.seed = int(seed)
        self.rates: Dict[ServiceFaultKind, float] = {}
        for kind, rate in (rates or {}).items():
            self.rates[ServiceFaultKind(kind)] = float(rate)
        self.max_faults = max_faults
        self.injected: Dict[str, int] = {}  # guarded-by: _lock
        self.events: List[FaultEvent] = []  # guarded-by: _lock
        self._lock = lockdep.lock("ServiceFaultInjector._lock")

    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    def _draw(self, kind: str, site: str, attempt: int) -> float:
        """A uniform in [0, 1) determined solely by the coordinates."""
        digest = hashlib.sha256(
            f"{self.seed}:{kind}:{site}:{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def fires(self, kind: object, site: str, attempt: int = 1) -> bool:
        """One seeded draw for ``kind`` at ``site`` (e.g. a job key) on
        this ``attempt``; records the event when it fires."""
        fault = ServiceFaultKind(kind)
        rate = self.rates.get(fault, 0.0)
        if rate <= 0.0:
            return False
        with self._lock:
            if (
                self.max_faults is not None
                and sum(self.injected.values()) >= self.max_faults
            ):
                return False
            if self._draw(fault.value, site, attempt) >= rate:
                return False
            self.injected[fault.value] = self.injected.get(fault.value, 0) + 1
            self.events.append(
                FaultEvent(
                    kind=fault.value,
                    site=site,
                    injected=True,
                    detail=f"attempt {attempt}",
                )
            )
            return True

    def storm_size(self, site: str, low: int = 4, high: int = 12) -> int:
        """Burst size of a tenant storm at ``site``: 0 when the
        TENANT_STORM draw does not fire, else a seeded size in
        ``[low, high]``."""
        if not self.fires(ServiceFaultKind.TENANT_STORM, site):
            return 0
        span = max(high - low, 0) + 1
        return low + int(self._draw("tenant_storm_size", site, 0) * span)


class HealthMonitor:
    """Detects persistent hardware faults from exchange behavior alone.

    The monitor never reads the injector or the health ledger's cause --
    it sees only what a real runtime would: a participant that misses
    the exchange deadline and ignores probes (dead node), checksum
    failures that keep landing on the same physical route (dead link),
    a participant that answers late every time (slow node).  Detection
    charges honest cycles through the guard (timeouts, probes,
    overruns), and repair actions (reroute, live migration) are
    recorded both in the health ledger and in the guard's tallies.
    """

    def __init__(self, machine, policy: ResiliencePolicy, guard: "FaultGuard") -> None:
        self.machine = machine
        self.policy = policy
        self.guard = guard
        #: Consecutive checksum failures per physical route.
        self.route_failures: Dict[FrozenSet[int], int] = {}
        #: Deadline overruns per slow physical node.
        self.slow_overruns: Dict[int, int] = {}
        #: Slow nodes already confirmed (migrated or limping).
        self.confirmed_slow: set = set()

    # ------------------------------------------------------------------
    # Deadline checks (before an exchange moves any data)
    # ------------------------------------------------------------------

    def check_participants(self, site: str) -> None:
        """Enforce the exchange deadline on every participant.

        A dead participant costs the full deadline plus its unanswered
        probes and raises :class:`NodeDeadError` -- no data moves and no
        exchange is charged.  Slow participants overrun the deadline
        (charged per exchange) until confirmed and live-migrated.
        """
        machine, guard, policy = self.machine, self.guard, self.policy
        lost = machine.lost_coords()
        if lost:
            coord = lost[0]
            guard.charge_timeout()
            guard.charge_probes(policy.probe_attempts)
            guard.note_detected(
                FaultKind.NODE_DEAD.value,
                site,
                f"node({coord.row},{coord.col}) missed the exchange "
                f"deadline; {policy.probe_attempts} probes unanswered",
            )
            raise NodeDeadError(
                (coord.row, coord.col),
                f"node({coord.row},{coord.col}) is dead (deadline + "
                f"probes unanswered during {site})",
            )
        for coord in machine.slow_coords():
            phys = machine.physical_id(coord.row, coord.col)
            guard.charge_slow_overrun()
            if phys in self.confirmed_slow:
                continue
            overruns = self.slow_overruns.get(phys, 0) + 1
            self.slow_overruns[phys] = overruns
            if overruns >= policy.slow_confirmations:
                self.confirmed_slow.add(phys)
                guard.note_detected(
                    FaultKind.NODE_SLOW.value,
                    site,
                    f"node({coord.row},{coord.col}) overran "
                    f"{overruns} consecutive deadlines",
                )
                # Live migration: the node still answers, so its state
                # is intact in the logical stacks -- remap without any
                # rollback.  No spare / no budget => keep limping (the
                # results stay correct; every exchange pays the
                # overrun).
                if (
                    self.machine.spares_remaining > 0
                    and guard.remap_budget_left()
                ):
                    guard.perform_remap((coord.row, coord.col), live=True)

    # ------------------------------------------------------------------
    # Route diagnosis (after checksum verification fails)
    # ------------------------------------------------------------------

    def observe_route_failures(self, routes, site: str) -> bool:
        """Account checksum failures against their physical routes.

        ``routes`` is an iterable of ``((recv_row, recv_col),
        (send_row, send_col))`` logical pairs whose bands failed
        verification.  When one route accumulates
        ``link_failure_threshold`` failures the monitor probes it
        (charged); a genuinely dead link is routed around (every later
        crossing pays the detour) or, when the grid is only one node
        wide along the detour axis, surfaces as
        :class:`LinkDownError`.  Returns True when a new reroute was
        established (the next retry should succeed).
        """
        machine, guard, policy = self.machine, self.guard, self.policy
        health = machine.health
        rerouted = False
        for recv, send in routes:
            phys_a = machine.physical_id(*recv)
            phys_b = machine.physical_id(*send)
            if phys_a == phys_b:
                continue
            key = link_key(phys_a, phys_b)
            if key in health.rerouted_links:
                continue
            failures = self.route_failures.get(key, 0) + 1
            self.route_failures[key] = failures
            if failures < policy.link_failure_threshold:
                continue
            guard.charge_probes(1)
            if not health.link_dead(phys_a, phys_b):
                # The probe came back clean: coincident transient
                # corruption, not a hardware condition.
                self.route_failures[key] = 0
                continue
            lo, hi = sorted((phys_a, phys_b))
            orientation = health.dead_links[key].orientation
            no_detour = (
                orientation == "h" and machine.grid_rows < 2
            ) or (orientation == "v" and machine.grid_cols < 2)
            if no_detour:
                guard.note_detected(
                    FaultKind.LINK_DOWN.value,
                    site,
                    f"link {lo}<->{hi} confirmed dead; no detour on a "
                    f"{machine.grid_rows}x{machine.grid_cols} grid",
                )
                raise LinkDownError(
                    f"link {lo}<->{hi} is dead and the "
                    f"{machine.grid_rows}x{machine.grid_cols} node grid "
                    f"has no route around it"
                )
            health.mark_link_rerouted(phys_a, phys_b)
            guard.stats.reroutes += 1
            guard.note_detected(
                FaultKind.LINK_DOWN.value,
                site,
                f"link {lo}<->{hi} confirmed dead after {failures} "
                f"checksum failures; routed around",
            )
            rerouted = True
        return rerouted

    def probe_node_links(self, coord, site: str) -> bool:
        """Per-node fallback diagnosis: a node whose whole received
        halo failed verification probes all four of its grid links.
        Returns True when any reroute was established."""
        row, col = coord
        machine = self.machine
        rows, cols = machine.shape
        routes = []
        if rows >= 2:
            routes.append(((row, col), ((row - 1) % rows, col)))
            routes.append(((row, col), ((row + 1) % rows, col)))
        if cols >= 2:
            routes.append(((row, col), (row, (col - 1) % cols)))
            routes.append(((row, col), (row, (col + 1) % cols)))
        return self.observe_route_failures(routes, site)

    # ------------------------------------------------------------------
    # Detour accounting (successful exchanges over rerouted links)
    # ------------------------------------------------------------------

    def charge_detours(
        self,
        depth: int,
        subgrid_shape: Tuple[int, int],
        params,
        full_height_ew: bool = False,
    ) -> None:
        """Charge the extra hop for every rerouted link this exchange
        crossed: per link, one startup plus the two band messages'
        elements at the per-element rate.  ``full_height_ew`` matches
        the deep exchange's full-height East/West bands."""
        health = self.machine.health
        if not health.rerouted_links:
            return
        rows, cols = subgrid_shape
        for key in health.rerouted_links:
            link = health.dead_links.get(key)
            if link is None:
                continue
            if link.orientation == "v":
                elements = 2 * depth * cols
            else:
                height = rows + 2 * depth if full_height_ew else rows
                elements = 2 * depth * height
            self.guard.charge_detour(
                params.comm_startup_cycles
                + int(params.comm_cycles_per_element * elements)
            )


class FaultGuard:
    """One chaos run's policy, injector, detection state, and tallies.

    The guard is threaded through the halo exchange, the executors, and
    the iteration drivers.  It plays two roles: the *detection* hooks
    (injection passthroughs, checksum/parity bookkeeping) and the
    *accountant* -- under guard, every exchange attempt, executor pass,
    backoff stall, checkpoint copy, and replay is charged here, and the
    final :class:`~repro.runtime.stencil_op.StencilRun` totals are read
    from these tallies instead of the closed-form fault-free formulas.
    With no faults fired, the tallies reproduce the formulas exactly.
    """

    def __init__(
        self,
        policy: Optional[ResiliencePolicy] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.policy = policy or ResiliencePolicy()
        self.injector = injector
        if (
            self.injector is not None
            and self.injector.rates.get(FaultKind.SDC, 0.0) > 0.0
            and not self.policy.abft
        ):
            raise ValueError(
                "FaultInjector has a FaultKind.SDC rate but "
                "ResiliencePolicy.abft is False: silent corruption "
                "would go undetected and break the bit-identical "
                "contract; enable abft=True (or drop the sdc rate)"
            )
        self.stats = FaultStats()
        #: Which exchange counter the next charge lands on.
        self.role = "source"
        self.exchanges = 0
        self.coeff_exchanges = 0
        self.comm_cycles = 0
        self.compute_cycles = 0
        self.half_strips = 0
        #: Hard-fault machinery, armed by :meth:`attach_machine`.
        self.machine = None
        self.monitor: Optional[HealthMonitor] = None
        #: Genesis checkpoint (source + coefficients) taken when the
        #: machine has spares; the reference a remap restores from.
        self.genesis = None
        #: True while re-running work already charged once (rollback
        #: replay / blocked restart): charges land in the replay
        #: buckets instead of the closed-form counters.
        self.replaying = False
        self._remaps_used = 0

    def attach_machine(self, machine) -> None:
        """Arm hard-fault detection and recovery against ``machine``."""
        self.machine = machine
        self.monitor = HealthMonitor(machine, self.policy, self)

    def begin_exchange(self, site: str) -> None:
        """The hard-fault window at the start of one guarded exchange:
        the injector may break hardware now, and the monitor checks
        every participant against the exchange deadline (raising
        :class:`NodeDeadError` before any data moves)."""
        if self.machine is None:
            return
        if self.injector is not None:
            self._absorb(self.injector.inject_hard(self.machine, site))
        if self.monitor is not None:
            self.monitor.check_participants(site)

    # ------------------------------------------------------------------
    # Injection passthroughs (no-ops without an injector)
    # ------------------------------------------------------------------

    def inject_halo(self, regions: Sequence[Tuple[str, np.ndarray]]) -> None:
        if self.injector is not None:
            self._absorb(self.injector.inject_halo(regions))

    def inject_scratch(
        self, buffers: Sequence[Tuple[str, np.ndarray]]
    ) -> None:
        if self.injector is not None:
            self._absorb(self.injector.inject_scratch(buffers))

    def inject_poison(self, result_stack: np.ndarray) -> None:
        if self.injector is not None:
            self._absorb(self.injector.inject_poison(result_stack))

    def inject_sdc(self, regions: Sequence[Tuple[str, np.ndarray]]) -> None:
        if self.injector is not None:
            self._absorb(self.injector.inject_sdc(regions))

    def _absorb(self, events: List[FaultEvent]) -> None:
        for event in events:
            self.stats.injected[event.kind] = (
                self.stats.injected.get(event.kind, 0) + 1
            )
            self.stats.events.append(event)

    # ------------------------------------------------------------------
    # Detection bookkeeping
    # ------------------------------------------------------------------

    def note_detected(self, channel: str, site: str, detail: str = "") -> None:
        self.stats.detected[channel] = self.stats.detected.get(channel, 0) + 1
        self.stats.events.append(
            FaultEvent(kind=channel, site=site, injected=False, detail=detail)
        )

    def note_rollback(self, replayed_iterations: int) -> None:
        self.stats.rollbacks += 1
        self.stats.replayed_iterations += int(replayed_iterations)

    def note_recompute(self) -> None:
        self.stats.recomputes += 1

    def note_degradation(self, step: str) -> None:
        self.stats.degradations = self.stats.degradations + (step,)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def charge_exchange(self, stats, *, retry: bool) -> None:
        """Charge one exchange attempt (``stats`` is its CommStats)."""
        self.comm_cycles += stats.cycles
        if retry:
            self.stats.retries += 1
            self.stats.retry_cycles += stats.cycles
            self.stats.retry_elements += stats.total_elements
        elif self.replaying:
            self.stats.replay_comm_cycles += stats.cycles
        elif self.role == "coeff":
            self.coeff_exchanges += 1
        else:
            self.exchanges += 1

    def charge_backoff(self, attempt: int) -> None:
        cycles = self.policy.backoff_cycles(attempt)
        self.comm_cycles += cycles
        self.stats.retry_cycles += cycles

    def charge_compute(
        self, cycles: int, half_strips: int, *, recovery: bool = False
    ) -> None:
        cycles = int(cycles)
        self.compute_cycles += cycles
        self.half_strips += int(half_strips)
        if recovery:
            self.stats.recompute_cycles += cycles
        elif self.replaying:
            self.stats.replay_compute_cycles += cycles

    def charge_skipped_exchanges(self, count: int, cycles_each: int) -> None:
        """Fixed-point short-circuit: the accounting still charges the
        remaining iterations' exchanges, exactly like the unguarded
        path."""
        self.exchanges += count
        self.comm_cycles += count * cycles_each

    def charge_checkpoint(self, words_per_node: int) -> None:
        cycles = int(
            words_per_node * self.policy.checkpoint_cycles_per_word
        )
        self.stats.checkpoints += 1
        self.stats.checkpoint_cycles += cycles
        self.compute_cycles += cycles

    def charge_abft(
        self, words_per_node: int, *, seals: int = 0, verifies: int = 0
    ) -> None:
        """Charge one ABFT seal or verify pass over ``words_per_node``
        words.  The cost lands in the dedicated ``abft_cycles`` bucket
        (always-on overhead, paid fault-free too), never in the
        recovery buckets -- reconciliation adds it explicitly."""
        cycles = int(words_per_node * self.policy.abft_cycles_per_word)
        self.stats.abft_seals += seals
        self.stats.abft_verifies += verifies
        self.stats.abft_cycles += cycles
        self.compute_cycles += cycles

    def charge_sdc_correction(self, cells: int) -> None:
        """Charge ``cells`` in-place forward corrections (recovery
        compute: localization intersect + one XOR write-back each)."""
        cycles = int(cells) * self.policy.sdc_correction_cycles
        self.stats.sdc_corrections += int(cells)
        self.stats.sdc_correction_cycles += cycles
        self.compute_cycles += cycles

    # ------------------------------------------------------------------
    # Hard-fault charging and repair
    # ------------------------------------------------------------------

    def charge_timeout(self) -> None:
        """One missed exchange deadline (a dead participant)."""
        cycles = self.policy.exchange_deadline_cycles
        self.comm_cycles += cycles
        self.stats.timeouts += 1
        self.stats.timeout_cycles += cycles

    def charge_probes(self, count: int = 1) -> None:
        cycles = count * self.policy.probe_cycles
        self.comm_cycles += cycles
        self.stats.probes += count
        self.stats.probe_cycles += cycles

    def charge_slow_overrun(self) -> None:
        """One deadline overrun by a degraded (slow) participant."""
        cycles = self.policy.slow_overrun_cycles
        self.comm_cycles += cycles
        self.stats.slow_overruns += 1
        self.stats.timeout_cycles += cycles

    def charge_detour(self, cycles: int) -> None:
        """Extra-hop cost of one rerouted link in one exchange."""
        self.comm_cycles += int(cycles)
        self.stats.detour_cycles += int(cycles)

    def reclaim_exchange(self, cycles: int) -> None:
        """Rollback reclassification: the iteration (or block) being
        rolled back already charged its successful exchange to the
        canonical counters; move that charge into the replay bucket so
        the replayed re-exchange can be charged canonically exactly
        once.  Keeps ``exchanges`` equal to the closed-form count, so
        guard totals reconcile as ``closed form + recovery buckets``."""
        if self.role == "coeff":
            self.coeff_exchanges -= 1
        else:
            self.exchanges -= 1
        self.stats.replay_comm_cycles += int(cycles)

    def remap_budget_left(self) -> bool:
        return self._remaps_used < self.policy.max_remaps

    def perform_remap(self, coord: Tuple[int, int], live: bool = False) -> None:
        """Migrate logical ``coord`` onto a spare and charge it.

        ``live=False`` is the dead-node path (the caller restores the
        lost tile from checkpoints afterwards); ``live=True`` is the
        slow-node path (state is intact, no rollback needed).  Raises
        :class:`NoSpareError` when no spare remains or the policy's
        remap budget is spent -- the typed error the no-spare
        acceptance criterion demands.
        """
        machine = self.machine
        row, col = coord
        if not self.remap_budget_left():
            raise NoSpareError(
                f"remap budget exhausted ({self.policy.max_remaps}); "
                f"cannot replace node({row},{col})"
            )
        if machine.spares_remaining == 0:
            raise NoSpareError(
                f"no spare node available to replace node({row},{col})"
            )
        words = machine.migration_words()
        machine.remap_node(row, col)
        self._remaps_used += 1
        cycles = int(words * self.policy.migration_cycles_per_word)
        self.comm_cycles += cycles
        self.stats.migrated_words += words
        self.stats.migration_cycles += cycles
        if live:
            self.stats.live_migrations += 1
        else:
            self.stats.remaps += 1
        new_phys = machine.physical_id(row, col)
        verb = "live-migrated" if live else "remapped"
        self.stats.events.append(
            FaultEvent(
                kind="remap",
                site=f"node({row},{col})",
                injected=False,
                detail=f"{verb} onto physical node {new_phys} "
                f"({words} words)",
            )
        )
        self.note_degradation(f"remap[node({row},{col})->phys{new_phys}]")

    def recover_dead_node(self, coord: Tuple[int, int]) -> None:
        """The full dead-node repair: remap onto a spare, then restore
        the migrated tile's contents from the genesis checkpoint
        (source + coefficients; the caller separately restores the
        iterate from its periodic checkpoint and replays)."""
        self.perform_remap(coord, live=False)
        if self.genesis is not None:
            self.machine.storage.restore(self.genesis)

    # ------------------------------------------------------------------
    # Shared checks
    # ------------------------------------------------------------------

    def verify_parity(self, region: np.ndarray, sealed: int, site: str) -> None:
        """Raise :class:`ParityError` when ``region`` no longer matches
        its sealed parity word."""
        if parity_word(region) != sealed:
            self.note_detected("parity", site)
            raise ParityError(f"parity mismatch in {site}")

    def verify_finite(self, region: np.ndarray, site: str) -> None:
        """Raise :class:`PoisonedResultError` on NaN/Inf under guard."""
        if self.policy.check_finite_results and not np.isfinite(region).all():
            self.note_detected("non_finite", site)
            raise PoisonedResultError(f"non-finite values in {site}")
