"""Fault injection, detection, and recovery for the run-time data path.

The CM-2's memory and NEWS network were engineered around ECC and
parity because at 64K processors over hours-long runs, silent
corruption is a certainty, not a risk.  The simulated runtime models
the same reality: a seeded :class:`FaultInjector` can corrupt or drop
halo messages, flip bits in the temporal-blocking ping-pong stacks
between sub-iterations, and poison a node's tile in the fast executor
-- and a detection + recovery layer threaded through
:mod:`repro.runtime.halo`, :mod:`repro.runtime.executor`, and
:mod:`repro.runtime.stencil_op` guarantees that every injected fault is
either recovered *bit-identically* or surfaced as a typed
:class:`FaultError`.  Silent wrong numbers are the one outcome the
design rules out.

Detection:

* per-message checksums on both halo paths (shallow and deep): after
  every exchange the received bands are checksummed against what the
  senders hold;
* a parity word sealed over each sub-iteration's valid region in the
  blocked executor, verified before the next sub-iteration reads it;
* NaN/Inf guards on the fast executor's result and on each temporal
  block's output.

Recovery (in escalation order):

1. bounded retry with capped exponential backoff for failed exchanges
   and executor passes -- every attempt is charged real communication
   or compute cycles;
2. rollback to a periodic checkpoint
   (:meth:`repro.machine.memory.MachineStorage.checkpoint` /
   ``restore``) and replay of the iterations since;
3. a graceful-degradation ladder: blocked fast path -> unblocked fast
   path -> exact per-node executor.  All three rungs are bit-identical
   in float32, so stepping down changes cost, never results.

All fault, retry, checkpoint, and degradation events are accounted in a
:class:`FaultStats` carried on the resulting
:class:`~repro.runtime.stencil_op.StencilRun`, and the
:class:`FaultGuard` doubles as the chaos run's cycle accountant, so a
degraded run reports honest (lower) gigaflops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..machine.memory import parity_word


class FaultError(Exception):
    """Base of every typed fault surfaced by the resilient runtime."""


class HaloChecksumError(FaultError):
    """A halo message's checksum did not match what the sender holds."""


class ParityError(FaultError):
    """A sealed scratch/ping-pong region failed its parity check."""


class PoisonedResultError(FaultError):
    """An executor pass produced non-finite values under guard."""


class RetryExhaustedError(FaultError):
    """An exchange kept failing verification past the retry budget."""


class DegradationExhaustedError(FaultError):
    """Every rung of the degradation ladder failed (defensive; the
    exact rung's datapath is modeled as ECC-protected and does not
    fault, so reaching this indicates persistent exchange failure)."""


class NonFiniteInputError(FaultError, ValueError):
    """An input array handed to ``apply_stencil(check_finite=True)``
    contains NaN or Inf."""


class FaultKind(str, Enum):
    """The injectable fault classes."""

    #: Flip one bit of one element of a received halo message.
    HALO_CORRUPT = "halo_corrupt"
    #: Drop a halo message: the destination band shows stale zeros.
    HALO_DROP = "halo_drop"
    #: Flip one bit somewhere in a ping-pong scratch stack between two
    #: temporal-block sub-iterations.
    SCRATCH_BITFLIP = "scratch_bitflip"
    #: Overwrite one node's tile of the fast executor's result with NaN.
    NODE_POISON = "node_poison"


ALL_FAULT_KINDS: Tuple[str, ...] = tuple(kind.value for kind in FaultKind)


@dataclass(frozen=True)
class FaultEvent:
    """One injected or detected fault occurrence."""

    kind: str
    site: str
    injected: bool
    detail: str = ""


@dataclass
class FaultStats:
    """Complete chaos-run accounting, carried on ``StencilRun``.

    All-zero (see :meth:`all_zero`) whenever injection and guarding are
    disabled -- the default run path never touches this object.
    """

    injected: Dict[str, int] = field(default_factory=dict)
    detected: Dict[str, int] = field(default_factory=dict)
    #: Exchange attempts beyond each first try.
    retries: int = 0
    #: Cycles of every retried exchange attempt plus backoff stalls.
    retry_cycles: int = 0
    #: Elements moved by retried exchange attempts.
    retry_elements: int = 0
    #: Executor passes re-run after a detected fault.
    recomputes: int = 0
    checkpoints: int = 0
    checkpoint_cycles: int = 0
    rollbacks: int = 0
    #: Iterations (or block sub-iterations) computed more than once.
    replayed_iterations: int = 0
    #: Ladder steps taken, e.g. ``("blocked->fast", "fast->exact")``.
    degradations: Tuple[str, ...] = ()
    events: List[FaultEvent] = field(default_factory=list)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def total_detected(self) -> int:
        return sum(self.detected.values())

    def all_zero(self) -> bool:
        """True when nothing fault-related happened at all."""
        return (
            not self.injected
            and not self.detected
            and not self.events
            and not self.degradations
            and self.retries == 0
            and self.retry_cycles == 0
            and self.retry_elements == 0
            and self.recomputes == 0
            and self.checkpoints == 0
            and self.checkpoint_cycles == 0
            and self.rollbacks == 0
            and self.replayed_iterations == 0
        )

    def describe(self) -> str:
        parts = [
            f"{self.total_injected} injected",
            f"{self.total_detected} detected",
            f"{self.retries} retries",
            f"{self.rollbacks} rollbacks",
        ]
        if self.degradations:
            parts.append("degraded " + ", ".join(self.degradations))
        return "; ".join(parts)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the detection + recovery layer.

    Attributes:
        max_retries: exchange re-attempts (and executor recomputes)
            after the first try before escalating.
        backoff_base_cycles: stall charged before the first retry;
            doubles per retry.
        backoff_cap_cycles: ceiling of the per-retry backoff stall.
        checkpoint_interval: snapshot the live iterate every this many
            iterations (0 disables periodic checkpoints; rollback then
            replays from the start, where the untouched source array is
            the implicit checkpoint).
        max_replays: rollback-and-replay attempts (per run in the
            iterated loop, per block in the blocked path) before the
            ladder steps down a rung.
        check_finite_results: guard executor outputs against NaN/Inf.
            Note that legitimately overflowing data also trips this
            guard; recovery then degrades to the exact rung, whose
            output is trusted verbatim -- results stay bit-identical,
            only the chaos run's cost grows.
        checkpoint_cycles_per_word: modeled cost of snapshotting one
            word per node (local memory copy bandwidth).
    """

    max_retries: int = 3
    backoff_base_cycles: int = 64
    backoff_cap_cycles: int = 4096
    checkpoint_interval: int = 4
    max_replays: int = 2
    check_finite_results: bool = True
    checkpoint_cycles_per_word: float = 1.0

    def backoff_cycles(self, attempt: int) -> int:
        """Capped exponential backoff before retry ``attempt`` (1-based)."""
        return min(
            self.backoff_base_cycles << max(attempt - 1, 0),
            self.backoff_cap_cycles,
        )


class FaultInjector:
    """A deterministic, seeded source of run-time data-path faults.

    ``rates`` maps fault kinds (:class:`FaultKind` or their string
    values) to per-opportunity probabilities.  Every draw comes from one
    ``numpy`` generator seeded with ``seed``, and the runtime consults
    the injector at a fixed sequence of sites, so a chaos run is exactly
    reproducible: same seed, same faults, same recovery path.
    ``max_faults`` bounds the total injections (None = unbounded).
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[Dict[object, float]] = None,
        max_faults: Optional[int] = None,
    ) -> None:
        self.seed = int(seed)
        self.rates: Dict[FaultKind, float] = {}
        for kind, rate in (rates or {}).items():
            self.rates[FaultKind(kind)] = float(rate)
        self.max_faults = max_faults
        self._rng = np.random.default_rng(self.seed)
        self.injected: Dict[str, int] = {}
        self.events: List[FaultEvent] = []

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def _fires(self, kind: FaultKind) -> bool:
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        if self.max_faults is not None and self.total_injected >= self.max_faults:
            return False
        return bool(self._rng.random() < rate)

    def _record(self, kind: FaultKind, site: str, detail: str) -> FaultEvent:
        event = FaultEvent(
            kind=kind.value, site=site, injected=True, detail=detail
        )
        self.injected[kind.value] = self.injected.get(kind.value, 0) + 1
        self.events.append(event)
        return event

    def _flip_bit(self, region: np.ndarray) -> str:
        """Flip one random bit of one element, in place."""
        index = np.unravel_index(
            int(self._rng.integers(region.size)), region.shape
        )
        bit = int(self._rng.integers(32))
        # A same-itemsize view aliases the region's memory even when it
        # is a non-contiguous slice of a larger stack.
        words = region.view(np.uint32)
        words[index] ^= np.uint32(1 << bit)
        return f"bit {bit} at {tuple(int(i) for i in index)}"

    # ------------------------------------------------------------------
    # Injection sites
    # ------------------------------------------------------------------

    def inject_halo(
        self, regions: Sequence[Tuple[str, np.ndarray]]
    ) -> List[FaultEvent]:
        """Corrupt and/or drop at most one halo message each.

        ``regions`` are the just-received message bands of one exchange,
        as ``(label, writable view)`` pairs.
        """
        events: List[FaultEvent] = []
        if self._fires(FaultKind.HALO_CORRUPT) and regions:
            label, region = regions[int(self._rng.integers(len(regions)))]
            if region.size:
                detail = self._flip_bit(region)
                events.append(
                    self._record(FaultKind.HALO_CORRUPT, label, detail)
                )
        if self._fires(FaultKind.HALO_DROP) and regions:
            label, region = regions[int(self._rng.integers(len(regions)))]
            if region.size:
                region[...] = 0.0
                events.append(
                    self._record(
                        FaultKind.HALO_DROP, label, "message never arrived"
                    )
                )
        return events

    def inject_scratch(
        self, buffers: Sequence[Tuple[str, np.ndarray]]
    ) -> List[FaultEvent]:
        """Maybe flip one bit in one ping-pong/scratch stack."""
        events: List[FaultEvent] = []
        if self._fires(FaultKind.SCRATCH_BITFLIP) and buffers:
            label, buffer = buffers[int(self._rng.integers(len(buffers)))]
            if buffer.size:
                detail = self._flip_bit(buffer)
                events.append(
                    self._record(FaultKind.SCRATCH_BITFLIP, label, detail)
                )
        return events

    def inject_poison(self, result_stack: np.ndarray) -> List[FaultEvent]:
        """Maybe poison (NaN) one node's tile of a result stack."""
        events: List[FaultEvent] = []
        if self._fires(FaultKind.NODE_POISON):
            grid_rows, grid_cols = result_stack.shape[:2]
            row = int(self._rng.integers(grid_rows))
            col = int(self._rng.integers(grid_cols))
            result_stack[row, col] = np.float32(np.nan)
            events.append(
                self._record(
                    FaultKind.NODE_POISON,
                    f"node({row},{col})",
                    "tile overwritten with NaN",
                )
            )
        return events


class FaultGuard:
    """One chaos run's policy, injector, detection state, and tallies.

    The guard is threaded through the halo exchange, the executors, and
    the iteration drivers.  It plays two roles: the *detection* hooks
    (injection passthroughs, checksum/parity bookkeeping) and the
    *accountant* -- under guard, every exchange attempt, executor pass,
    backoff stall, checkpoint copy, and replay is charged here, and the
    final :class:`~repro.runtime.stencil_op.StencilRun` totals are read
    from these tallies instead of the closed-form fault-free formulas.
    With no faults fired, the tallies reproduce the formulas exactly.
    """

    def __init__(
        self,
        policy: Optional[ResiliencePolicy] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.policy = policy or ResiliencePolicy()
        self.injector = injector
        self.stats = FaultStats()
        #: Which exchange counter the next charge lands on.
        self.role = "source"
        self.exchanges = 0
        self.coeff_exchanges = 0
        self.comm_cycles = 0
        self.compute_cycles = 0
        self.half_strips = 0

    # ------------------------------------------------------------------
    # Injection passthroughs (no-ops without an injector)
    # ------------------------------------------------------------------

    def inject_halo(self, regions: Sequence[Tuple[str, np.ndarray]]) -> None:
        if self.injector is not None:
            self._absorb(self.injector.inject_halo(regions))

    def inject_scratch(
        self, buffers: Sequence[Tuple[str, np.ndarray]]
    ) -> None:
        if self.injector is not None:
            self._absorb(self.injector.inject_scratch(buffers))

    def inject_poison(self, result_stack: np.ndarray) -> None:
        if self.injector is not None:
            self._absorb(self.injector.inject_poison(result_stack))

    def _absorb(self, events: List[FaultEvent]) -> None:
        for event in events:
            self.stats.injected[event.kind] = (
                self.stats.injected.get(event.kind, 0) + 1
            )
            self.stats.events.append(event)

    # ------------------------------------------------------------------
    # Detection bookkeeping
    # ------------------------------------------------------------------

    def note_detected(self, channel: str, site: str, detail: str = "") -> None:
        self.stats.detected[channel] = self.stats.detected.get(channel, 0) + 1
        self.stats.events.append(
            FaultEvent(kind=channel, site=site, injected=False, detail=detail)
        )

    def note_rollback(self, replayed_iterations: int) -> None:
        self.stats.rollbacks += 1
        self.stats.replayed_iterations += int(replayed_iterations)

    def note_recompute(self) -> None:
        self.stats.recomputes += 1

    def note_degradation(self, step: str) -> None:
        self.stats.degradations = self.stats.degradations + (step,)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def charge_exchange(self, stats, *, retry: bool) -> None:
        """Charge one exchange attempt (``stats`` is its CommStats)."""
        self.comm_cycles += stats.cycles
        if retry:
            self.stats.retries += 1
            self.stats.retry_cycles += stats.cycles
            self.stats.retry_elements += stats.total_elements
        elif self.role == "coeff":
            self.coeff_exchanges += 1
        else:
            self.exchanges += 1

    def charge_backoff(self, attempt: int) -> None:
        cycles = self.policy.backoff_cycles(attempt)
        self.comm_cycles += cycles
        self.stats.retry_cycles += cycles

    def charge_compute(self, cycles: int, half_strips: int) -> None:
        self.compute_cycles += int(cycles)
        self.half_strips += int(half_strips)

    def charge_skipped_exchanges(self, count: int, cycles_each: int) -> None:
        """Fixed-point short-circuit: the accounting still charges the
        remaining iterations' exchanges, exactly like the unguarded
        path."""
        self.exchanges += count
        self.comm_cycles += count * cycles_each

    def charge_checkpoint(self, words_per_node: int) -> None:
        cycles = int(
            words_per_node * self.policy.checkpoint_cycles_per_word
        )
        self.stats.checkpoints += 1
        self.stats.checkpoint_cycles += cycles
        self.compute_cycles += cycles

    # ------------------------------------------------------------------
    # Shared checks
    # ------------------------------------------------------------------

    def verify_parity(self, region: np.ndarray, sealed: int, site: str) -> None:
        """Raise :class:`ParityError` when ``region`` no longer matches
        its sealed parity word."""
        if parity_word(region) != sealed:
            self.note_detected("parity", site)
            raise ParityError(f"parity mismatch in {site}")

    def verify_finite(self, region: np.ndarray, site: str) -> None:
        """Raise :class:`PoisonedResultError` on NaN/Inf under guard."""
        if self.policy.check_finite_results and not np.isfinite(region).all():
            self.note_detected("non_finite", site)
            raise PoisonedResultError(f"non-finite values in {site}")
