"""Algorithm-based fault tolerance for the stacked working set.

Huang-Abraham style ABFT keeps checksum vectors alongside the data and
re-derives them after every compute step; corruption then shows up as a
nonzero *residual* instead of an invisible bit-flip.  The classical
construction sums rows and columns in floating point, but this runtime's
acceptance contract is *bit*-identity, and float addition neither
commutes with rounding nor localizes which bit flipped.  We therefore
work over GF(2): the checksum of a subgrid row is the XOR of its raw
float32 words (viewed as ``uint32``), and likewise per column.

The algebra that makes this forward-correcting:

* XOR is exact -- sealing and re-deriving the checksum of unchanged
  data always agree, so a nonzero residual *is* corruption, never
  rounding noise.
* A single flipped word at ``(r, c)`` of one tile violates exactly one
  row checksum (``r``) and one column checksum (``c``), and both
  residuals equal the flipped bit mask.  Intersecting the violated row
  and column localizes the word; XOR-ing the residual back restores the
  original bits exactly.  Forward recovery: zero rollback, zero replay.
* Damage that violates more than one row or column per tile (or leaves
  mismatched residual masks) is beyond forward correction; the caller
  falls back to the checkpoint/rollback ladder via
  :class:`~repro.runtime.faults.SdcUncorrectableError`.

Seals live next to the stacks they cover, in
:class:`~repro.machine.memory.MachineStorage` (``seal_abft`` /
``get_abft`` / ``clear_abft``), keyed by buffer name.  The vectors are
tiny -- ``rows + cols`` words per node tile versus ``rows * cols`` data
words -- and the seal/verify passes are charged to the dedicated
``abft_cycles`` bucket of :class:`~repro.runtime.faults.FaultStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .faults import FaultGuard, FaultKind, SdcUncorrectableError

__all__ = [
    "AbftSeal",
    "col_parity",
    "row_parity",
    "seal_checksums",
    "verify_and_correct",
]


def _words(stack: np.ndarray) -> np.ndarray:
    """The raw 32-bit words of a float32 stack (aliasing view)."""
    if stack.dtype != np.float32:
        raise TypeError(
            f"ABFT checksums cover float32 stacks, got {stack.dtype}"
        )
    return stack.view(np.uint32)


def row_parity(stack: np.ndarray) -> np.ndarray:
    """Per-row XOR checksum: reduce the subgrid column axis (``-1``).

    Leading axes (node grid, batch, filter) are preserved, so one call
    covers a plain ``(gr, gc, rows, cols)`` stack and a batched
    ``(batch, gr, gc, rows, cols)`` slice alike.
    """
    return np.bitwise_xor.reduce(_words(stack), axis=-1)


def col_parity(stack: np.ndarray) -> np.ndarray:
    """Per-column XOR checksum: reduce the subgrid row axis (``-2``)."""
    return np.bitwise_xor.reduce(_words(stack), axis=-2)


@dataclass(frozen=True)
class AbftSeal:
    """The sealed row/column checksum vectors of one stack.

    ``row`` has the stack's shape with the last axis dropped (one word
    per subgrid row); ``col`` drops the second-to-last axis instead.
    ``shape`` pins the sealed stack's shape so a reshaped or
    reallocated buffer can never verify against a stale seal.
    """

    row: np.ndarray
    col: np.ndarray
    shape: Tuple[int, ...]


def seal_checksums(stack: np.ndarray) -> AbftSeal:
    """Derive and freeze the checksum vectors of ``stack`` as of now."""
    return AbftSeal(
        row=row_parity(stack),
        col=col_parity(stack),
        shape=tuple(stack.shape),
    )


def verify_and_correct(
    stack: np.ndarray,
    sealed: Optional[AbftSeal],
    *,
    site: str,
    guard: Optional[FaultGuard] = None,
) -> int:
    """Check ``stack`` against its seal; forward-correct what we can.

    Returns the number of corrected words (0 when the residuals are
    clean).  Each tile -- one ``(..., grid_row, grid_col)`` index -- is
    localized independently: a tile with exactly one violated row, one
    violated column, and equal residual masks has its word XOR-restored
    in place, bit-exactly.  Anything else raises
    :class:`~repro.runtime.faults.SdcUncorrectableError` for the
    rollback ladder.  Under ``guard``, every correction and every
    uncorrectable tile is recorded as a detected ``sdc`` event.
    """
    if sealed is None:
        raise SdcUncorrectableError(
            f"{site}: no ABFT seal to verify against"
        )
    if tuple(stack.shape) != sealed.shape:
        raise SdcUncorrectableError(
            f"{site}: stack shape {tuple(stack.shape)} does not match "
            f"sealed shape {sealed.shape}"
        )
    res_row = row_parity(stack) ^ sealed.row
    res_col = col_parity(stack) ^ sealed.col
    tile_bad = res_row.any(axis=-1) | res_col.any(axis=-1)
    if not tile_bad.any():
        return 0
    words = _words(stack)
    corrected = 0
    for tile_index in np.argwhere(tile_bad):
        tile = tuple(int(i) for i in tile_index)
        rows_bad = np.flatnonzero(res_row[tile])
        cols_bad = np.flatnonzero(res_col[tile])
        if len(rows_bad) == 1 and len(cols_bad) == 1:
            r = int(rows_bad[0])
            c = int(cols_bad[0])
            row_mask = np.uint32(res_row[tile][r])
            col_mask = np.uint32(res_col[tile][c])
            if row_mask == col_mask:
                # The residual IS the flip mask: one XOR restores the
                # original word bit-for-bit.
                words[tile + (r, c)] ^= row_mask
                corrected += 1
                if guard is not None:
                    guard.note_detected(
                        FaultKind.SDC.value,
                        site,
                        f"forward-corrected word ({r},{c}) of tile "
                        f"{tile}, flip mask {int(row_mask):#010x}",
                    )
                continue
        detail = (
            f"tile {tile}: violated rows "
            f"{[int(r) for r in rows_bad]}, cols "
            f"{[int(c) for c in cols_bad]}"
        )
        if guard is not None:
            guard.note_detected(
                FaultKind.SDC.value, site, f"uncorrectable: {detail}"
            )
        raise SdcUncorrectableError(
            f"{site}: multi-cell damage beyond forward correction "
            f"({detail}); falling back to the rollback ladder"
        )
    return corrected
