"""The run-time library: arrays, halo exchange, strip mining, execution."""

from .cm_array import CMArray
from .decomposition import Block, Decomposition
from .executor import (
    ExecutionSetupError,
    check_arrays,
    node_execute_exact,
    node_execute_fast,
)
from .halo import (
    CommStats,
    exchange_cost,
    exchange_halo,
    halo_buffer_name,
    legacy_exchange_cost,
)
from .multidim import (
    CMArray3D,
    DepthTap,
    Stencil3DRun,
    apply_stencil_3d,
    compile_3d,
)
from .stencil_op import StencilRun, apply_stencil
from .strips import Strip, StripSchedule, split_rows
from .subroutine import StencilFunction, make_stencil_function, make_subroutine

__all__ = [
    "Block",
    "CMArray",
    "CMArray3D",
    "DepthTap",
    "Stencil3DRun",
    "apply_stencil_3d",
    "compile_3d",
    "CommStats",
    "Decomposition",
    "ExecutionSetupError",
    "StencilFunction",
    "StencilRun",
    "Strip",
    "make_stencil_function",
    "make_subroutine",
    "StripSchedule",
    "apply_stencil",
    "check_arrays",
    "exchange_cost",
    "exchange_halo",
    "halo_buffer_name",
    "legacy_exchange_cost",
    "node_execute_exact",
    "node_execute_fast",
    "split_rows",
]
