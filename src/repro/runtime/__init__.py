"""The run-time library: arrays, halo exchange, strip mining, execution."""

from .blocking import (
    BlockedCosts,
    best_block_depth,
    blockable,
    blocked_costs,
    depth_cap,
)
from .cm_array import CMArray
from .decomposition import Block, Decomposition
from .executor import (
    ExecutionSetupError,
    check_arrays,
    check_finite_arrays,
    machine_execute_blocked,
    node_execute_exact,
    node_execute_fast,
)
from .faults import (
    ALL_FAULT_KINDS,
    DegradationExhaustedError,
    FaultError,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultStats,
    HaloChecksumError,
    NonFiniteInputError,
    ParityError,
    PoisonedResultError,
    ResiliencePolicy,
    RetryExhaustedError,
)
from .halo import (
    CommStats,
    deep_exchange_cost,
    exchange_cost,
    exchange_halo,
    exchange_halo_deep,
    halo_buffer_name,
    legacy_exchange_cost,
)
from .multidim import (
    CMArray3D,
    DepthTap,
    Stencil3DRun,
    apply_stencil_3d,
    compile_3d,
)
from .stencil_op import StencilRun, apply_stencil
from .strips import Strip, StripSchedule, split_rows
from .subroutine import StencilFunction, make_stencil_function, make_subroutine

__all__ = [
    "ALL_FAULT_KINDS",
    "Block",
    "BlockedCosts",
    "CMArray",
    "DegradationExhaustedError",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultStats",
    "HaloChecksumError",
    "NonFiniteInputError",
    "ParityError",
    "PoisonedResultError",
    "ResiliencePolicy",
    "RetryExhaustedError",
    "check_finite_arrays",
    "CMArray3D",
    "DepthTap",
    "Stencil3DRun",
    "apply_stencil_3d",
    "compile_3d",
    "CommStats",
    "Decomposition",
    "ExecutionSetupError",
    "StencilFunction",
    "StencilRun",
    "Strip",
    "make_stencil_function",
    "make_subroutine",
    "StripSchedule",
    "apply_stencil",
    "best_block_depth",
    "blockable",
    "blocked_costs",
    "check_arrays",
    "deep_exchange_cost",
    "depth_cap",
    "exchange_cost",
    "exchange_halo",
    "exchange_halo_deep",
    "halo_buffer_name",
    "legacy_exchange_cost",
    "machine_execute_blocked",
    "node_execute_exact",
    "node_execute_fast",
    "split_rows",
]
