"""The user-facing stencil application entry point.

``apply_stencil`` does what the paper's run-time library does for one
call: allocate temporary halo storage, perform the up-front neighbor
exchange, then drive every node's subgrid through the strip-mined
compiled plans -- and returns a complete accounting of where the time
went.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..compiler.plan import CompiledStencil
from ..machine.machine import CM2
from ..machine.params import MachineParams
from .cm_array import CMArray
from .executor import (
    ExecutionSetupError,
    check_arrays,
    node_execute_exact,
    node_execute_fast,
)
from .halo import CommStats, exchange_halo
from .strips import StripSchedule


@dataclass(frozen=True)
class StencilRun:
    """The outcome of one (possibly iterated) stencil call.

    Cycle counts are per node per iteration; the CM-2 is synchronous
    SIMD, so they are identical on every node and independent of machine
    size.

    Attributes:
        compiled: the plan that ran.
        machine: the machine it ran on.
        result: the distributed result array.
        iterations: how many times the computation was (or is modeled to
            be) applied.
        compute_cycles: node cycles per iteration inside the microcode
            loops (strip mining included).
        comm: halo-exchange cost per iteration.
        half_strips: microcode invocations per iteration (drives the
            front-end overhead).
        exact: whether the cycle count came from the cycle-stepped
            datapath (True) or the closed-form model (False).
    """

    compiled: CompiledStencil
    machine: CM2
    result: CMArray
    iterations: int
    compute_cycles: int
    comm: CommStats
    half_strips: int
    exact: bool

    @property
    def params(self) -> MachineParams:
        return self.compiled.params

    @property
    def cycles_per_iteration(self) -> int:
        return self.compute_cycles + self.comm.cycles

    @property
    def machine_seconds_per_iteration(self) -> float:
        return self.params.seconds(self.cycles_per_iteration)

    @property
    def host_seconds_per_iteration(self) -> float:
        return self.params.host_overhead_s(self.half_strips)

    @property
    def seconds_per_iteration(self) -> float:
        """Elapsed wall-clock per iteration: machine time plus the
        front-end time to issue the calls (the host and the sequencer do
        not overlap in this SIMD regime)."""
        return self.machine_seconds_per_iteration + self.host_seconds_per_iteration

    @property
    def elapsed_seconds(self) -> float:
        return self.iterations * self.seconds_per_iteration

    @property
    def useful_flops_per_node_per_iteration(self) -> int:
        rows, cols = self.result.subgrid_shape
        return rows * cols * self.compiled.pattern.useful_flops_per_point()

    @property
    def useful_flops(self) -> int:
        return (
            self.useful_flops_per_node_per_iteration
            * self.machine.num_nodes
            * self.iterations
        )

    @property
    def mflops(self) -> float:
        """Sustained useful Mflops over the whole run."""
        return self.useful_flops / self.elapsed_seconds / 1e6

    @property
    def gflops(self) -> float:
        return self.mflops / 1e3

    def describe(self) -> str:
        rows, cols = self.result.subgrid_shape
        return (
            f"{self.compiled.pattern.name or 'stencil'} on "
            f"{self.machine.num_nodes} nodes, {rows}x{cols} subgrids, "
            f"{self.iterations} iterations: {self.elapsed_seconds:.2f} s, "
            f"{self.mflops:.1f} Mflops"
        )


def apply_stencil(
    compiled: CompiledStencil,
    source: CMArray,
    coefficients: Optional[Dict[str, CMArray]] = None,
    result: Union[CMArray, str, None] = None,
    *,
    iterations: int = 1,
    exact: bool = False,
) -> StencilRun:
    """Apply a compiled stencil to a distributed array.

    Args:
        compiled: output of :func:`repro.compiler.compile_stencil` (or
            the Fortran/defstencil drivers).
        source: the shifted data array (``X`` in the paper).
        coefficients: coefficient arrays by statement name (``C1``...).
        result: the result array, its name, or None to create one named
            after the statement's left-hand side.
        iterations: how many applications to model.  Numerics are
            idempotent (the source is not modified), so fast mode
            computes them once and scales the time; exact mode re-runs
            the datapath each iteration.
        exact: run the cycle-stepped datapath instead of the vectorized
            fast path.

    Returns:
        a :class:`StencilRun` with the result and full cost accounting.
    """
    if iterations < 1:
        raise ValueError("iterations must be positive")
    machine = source.machine
    pattern = compiled.pattern
    coefficients = coefficients or {}
    if result is None:
        result = pattern.result
    if isinstance(result, str):
        result = CMArray(result, machine, source.global_shape)
    check_arrays(compiled, source, coefficients, result)

    # The compiled plans stream coefficients by *statement* name; when a
    # caller passes arrays stored under different names (e.g. through the
    # subroutine-call interface), point the statement names at them --
    # run-time base addresses, as the sequencer would take them.
    for statement_name, array in coefficients.items():
        if array.name != statement_name:
            for node in machine.nodes():
                node.memory.alias(statement_name, array.name)

    schedule = StripSchedule(compiled, source.subgrid_shape)
    params = compiled.params
    comm = exchange_halo(source, pattern, params)
    pad = comm.pad

    if exact:
        cycles = None
        for _ in range(iterations):
            for node in machine.nodes():
                node_cycles = node_execute_exact(
                    compiled,
                    node,
                    schedule,
                    source_name=source.name,
                    result_name=result.name,
                    halo=pad,
                )
                if cycles is not None and node_cycles != cycles:
                    raise AssertionError(
                        "SIMD invariant violated: nodes disagree on cycles"
                    )
                cycles = node_cycles
        compute_cycles = cycles
    else:
        for node in machine.nodes():
            node_execute_fast(
                pattern,
                node,
                source_name=source.name,
                result_name=result.name,
                halo=pad,
            )
        compute_cycles = schedule.compute_cycles(params)

    return StencilRun(
        compiled=compiled,
        machine=machine,
        result=result,
        iterations=iterations,
        compute_cycles=compute_cycles,
        comm=comm,
        half_strips=schedule.num_half_strips,
        exact=exact,
    )
