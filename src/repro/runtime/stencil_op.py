"""The user-facing stencil application entry point.

``apply_stencil`` does what the paper's run-time library does for one
call: allocate temporary halo storage, perform the up-front neighbor
exchange, then drive every node's subgrid through the strip-mined
compiled plans -- and returns a complete accounting of where the time
went.

Iterated runs can additionally be *temporally blocked*: a halo ``T``
times deeper is exchanged once per block of ``T`` iterations, and the
whole block runs locally on a ping-pong buffer pair, each sub-iteration
consuming one ``pad`` of the remaining ghost depth (see
:mod:`repro.runtime.blocking`).  Blocking changes the exchange count --
``ceil(iterations / T)`` deep exchanges instead of ``iterations``
shallow ones -- but not a single result bit.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..compiler.driver import select_block_depth
from ..compiler.plan import CompiledStencil
from ..machine.machine import CM2
from ..machine.params import MachineParams
from ..verify.aliasing import ensure_no_aliasing
from .blocking import (
    array_coefficient_names,
    block_compute_cycles,
    block_steps,
    blockable,
    blocked_costs,
    depth_cap,
)
from .abft import seal_checksums, verify_and_correct
from .cm_array import CMArray
from .executor import (
    ExecutionSetupError,
    check_arrays,
    check_finite_arrays,
    machine_execute_blocked,
    machine_execute_fast,
    node_execute_exact,
    node_execute_fast,
)
from .faults import (
    DegradationExhaustedError,
    FaultError,
    FaultGuard,
    FaultInjector,
    FaultStats,
    LinkDownError,
    NodeDeadError,
    NoSpareError,
    ResiliencePolicy,
    SdcUncorrectableError,
)
from .halo import (
    CommStats,
    deep_exchange_cost,
    exchange_cost,
    exchange_halo,
    exchange_halo_deep,
    halo_buffer_name,
)
from .strips import StripSchedule


@dataclass(frozen=True)
class StencilRun:
    """The outcome of one (possibly iterated) stencil call.

    Cycle counts are per node per iteration; the CM-2 is synchronous
    SIMD, so they are identical on every node and independent of machine
    size.

    Attributes:
        compiled: the plan that ran.
        machine: the machine it ran on.
        result: the distributed result array.
        iterations: how many times the computation was (or is modeled to
            be) applied.
        compute_cycles: node cycles per iteration inside the microcode
            loops (strip mining included), for an unblocked
            subgrid-shaped iteration.
        comm: halo-exchange cost of one *shallow* (depth-1) exchange.
        half_strips: microcode invocations per unblocked iteration
            (drives the front-end overhead).
        exact: whether the cycle count came from the cycle-stepped
            datapath (True) or the closed-form model (False).
        batched: whether fast mode ran the batched whole-machine
            executor (False in exact mode or after a per-node fallback).
        block_depth: temporal block depth ``T`` (1 = unblocked).
        num_exchanges: source halo exchanges charged over the whole run
            (``ceil(iterations / T)`` when blocked, ``iterations``
            otherwise); None means the per-iteration default.
        coeff_exchanges: coefficient deep exchanges (blocked runs only).
        block_comm: cost of one full-depth deep exchange (blocked runs).
        total_comm_cycles: aggregated exchange cycles over the whole
            run; None means ``iterations * comm.cycles``.
        total_compute_cycles: aggregated node compute cycles; None means
            ``iterations * compute_cycles``.
        total_half_strips: aggregated microcode invocations; None means
            ``iterations * half_strips``.
        faults: chaos-run fault/retry/checkpoint accounting; None (the
            default) on ordinary runs -- see :attr:`fault_stats`.
    """

    compiled: CompiledStencil
    machine: CM2
    result: CMArray
    iterations: int
    compute_cycles: int
    comm: CommStats
    half_strips: int
    exact: bool
    batched: bool = False
    block_depth: int = 1
    num_exchanges: Optional[int] = None
    coeff_exchanges: int = 0
    block_comm: Optional[CommStats] = None
    total_comm_cycles: Optional[int] = None
    total_compute_cycles: Optional[int] = None
    total_half_strips: Optional[int] = None
    faults: Optional[FaultStats] = None

    @property
    def params(self) -> MachineParams:
        return self.compiled.params

    @property
    def fault_stats(self) -> FaultStats:
        """Fault accounting, all-zero for ordinary (unguarded) runs."""
        return self.faults if self.faults is not None else FaultStats()

    @property
    def exchanges(self) -> int:
        """Halo exchanges charged over the whole run."""
        if self.num_exchanges is not None:
            return self.num_exchanges
        return self.iterations

    @property
    def comm_cycles_total(self) -> int:
        """All exchange cycles over the whole run (source and, when
        blocked, coefficient deep exchanges)."""
        if self.total_comm_cycles is not None:
            return self.total_comm_cycles
        return self.iterations * self.comm.cycles

    @property
    def compute_cycles_total(self) -> int:
        if self.total_compute_cycles is not None:
            return self.total_compute_cycles
        return self.iterations * self.compute_cycles

    @property
    def half_strips_total(self) -> int:
        if self.total_half_strips is not None:
            return self.total_half_strips
        return self.iterations * self.half_strips

    @property
    def host_calls(self) -> int:
        """Run-time-library invocations the host issues: one per block
        when temporally blocked (the deep exchange and the whole local
        sub-iteration loop ride on a single call), one per iteration
        otherwise."""
        return self.exchanges if self.block_depth > 1 else self.iterations

    @property
    def host_seconds_total(self) -> float:
        """Front-end time over the whole run: the per-call fixed cost
        for every library invocation plus the per-half-strip issue
        cost."""
        return (
            self.host_calls * self.params.host_fixed_s
            + self.half_strips_total * self.params.host_halfstrip_s
        )

    @property
    def cycles_per_iteration(self) -> int:
        return self.compute_cycles + self.comm.cycles

    @property
    def machine_seconds_per_iteration(self) -> float:
        return (
            self.params.seconds(
                self.compute_cycles_total + self.comm_cycles_total
            )
            / self.iterations
        )

    @property
    def host_seconds_per_iteration(self) -> float:
        return self.host_seconds_total / self.iterations

    @property
    def seconds_per_iteration(self) -> float:
        """Elapsed wall-clock per iteration: machine time plus the
        front-end time to issue the calls (the host and the sequencer do
        not overlap in this SIMD regime)."""
        return self.machine_seconds_per_iteration + self.host_seconds_per_iteration

    @property
    def elapsed_seconds(self) -> float:
        return (
            self.params.seconds(
                self.compute_cycles_total + self.comm_cycles_total
            )
            + self.host_seconds_total
        )

    @property
    def useful_flops_per_node_per_iteration(self) -> int:
        rows, cols = self.result.subgrid_shape
        return rows * cols * self.compiled.pattern.useful_flops_per_point()

    @property
    def useful_flops(self) -> int:
        return (
            self.useful_flops_per_node_per_iteration
            * self.machine.num_nodes
            * self.iterations
        )

    @property
    def mflops(self) -> float:
        """Sustained useful Mflops over the whole run.  Blocked runs
        divide the same useful flops by the blocked elapsed time: the
        halo ring's redundant flops cost time but are never counted as
        useful."""
        return self.useful_flops / self.elapsed_seconds / 1e6

    @property
    def gflops(self) -> float:
        return self.mflops / 1e3

    def describe(self) -> str:
        rows, cols = self.result.subgrid_shape
        blocked = (
            f", block depth {self.block_depth}" if self.block_depth > 1 else ""
        )
        return (
            f"{self.compiled.pattern.name or 'stencil'} on "
            f"{self.machine.num_nodes} nodes, {rows}x{cols} subgrids, "
            f"{self.iterations} iterations{blocked}: "
            f"{self.elapsed_seconds:.2f} s, {self.mflops:.1f} Mflops"
        )


@contextmanager
def _coefficient_bindings(machine: CM2, coefficients: Dict[str, CMArray]):
    """Point statement coefficient names at the caller's arrays, scoped
    to one call.

    The compiled plans stream coefficients by *statement* name; when a
    caller passes arrays stored under different names (e.g. through the
    subroutine-call interface), the statement names are aliased to them
    -- run-time base addresses, as the sequencer would take them.  The
    previous bindings (if any) are restored on exit, so repeated calls
    with different arrays never see each other's aliases and node memory
    does not accumulate stale names.
    """
    saved = []
    for statement_name, array in coefficients.items():
        if array.name == statement_name:
            continue
        previous_stack = machine.storage.get(statement_name)
        previous_views = [
            node.memory.view(statement_name) for node in machine.nodes()
        ]
        machine.alias_stacked(statement_name, array.name)
        saved.append((statement_name, previous_stack, previous_views))
    try:
        yield
    finally:
        for statement_name, previous_stack, previous_views in reversed(saved):
            if previous_stack is None:
                machine.storage.free(statement_name)
            else:
                machine.storage.bind(statement_name, previous_stack)
            for node, view in zip(machine.nodes(), previous_views):
                if view is None:
                    node.memory.free(statement_name)
                else:
                    node.memory.install_view(statement_name, view)


def _at_fixed_point(
    machine: CM2, halo_name: str, result_name: str, pad: int
) -> bool:
    """True when the result bit-equals the interior of the padded input
    it was computed from -- a fixed point.  Every subsequent iteration
    would then reproduce the same bits (same input, same taps), so the
    iteration loop can stop computing early without changing the answer.
    NaNs compare unequal, so diverging runs are never cut short.
    """
    padded = machine.storage.get(halo_name)
    result = machine.storage.get(result_name)
    if padded is None or result is None:
        return False
    rows, cols = result.shape[2:]
    interior = padded[:, :, pad : pad + rows, pad : pad + cols]
    return np.array_equal(result, interior)


def _at_fixed_point_per_node(
    machine: CM2, halo_name: str, result_name: str, pad: int
) -> bool:
    """Per-node fallback of :func:`_at_fixed_point`, for runs whose
    buffers are not (or no longer) stack-backed.  The node interiors
    tile the global array, so every node agreeing is exactly the
    machine-wide fixed point."""
    for node in machine.nodes():
        padded = node.memory.view(halo_name)
        result = node.memory.view(result_name)
        if padded is None or result is None:
            return False
        rows, cols = result.shape
        if not np.array_equal(
            result, padded[pad : pad + rows, pad : pad + cols]
        ):
            return False
    return True


def _resolve_block_depth(
    compiled: CompiledStencil,
    source: CMArray,
    iterations: int,
    exact: bool,
    batched: bool,
    block_depth: Union[int, str],
    tenant: Optional[str] = None,
) -> int:
    """Validate the caller's ``block_depth`` and clamp it to what the
    run can actually support.  Exact mode, per-node mode, single calls,
    and unblockable patterns always resolve to 1."""
    if block_depth == "auto":
        requested = None
    elif isinstance(block_depth, int) and not isinstance(block_depth, bool):
        if block_depth < 1:
            raise ValueError(
                f"block_depth must be a positive int or 'auto', "
                f"got {block_depth}"
            )
        requested = block_depth
    else:
        raise ValueError(
            f"block_depth must be a positive int or 'auto', got {block_depth!r}"
        )
    if exact or not batched or iterations < 2:
        return 1
    if not blockable(compiled.pattern):
        return 1
    cap = depth_cap(compiled.pattern, source.subgrid_shape, iterations)
    if requested is not None:
        return min(requested, cap)
    if cap < 2:
        return 1
    return select_block_depth(
        compiled,
        source.subgrid_shape,
        iterations,
        machine=source.machine,
        tenant=tenant,
    )


def _apply_blocked(
    compiled: CompiledStencil,
    source: CMArray,
    result: CMArray,
    schedule: StripSchedule,
    depth: int,
    iterations: int,
    guard: Optional[FaultGuard] = None,
) -> Optional[StencilRun]:
    """Run an iterated call temporally blocked at ``depth``.

    Returns None when any needed buffer is not stack-backed -- the
    caller then falls through to the unblocked loop, which is always
    correct.

    Under ``guard``, every deep exchange is checksummed and retried, the
    blocked executor runs parity-sealed, and a block whose corruption
    survives the exchange retries is rolled back and replayed (bounded
    by ``policy.max_replays``) -- the block input lives in ``current``,
    which no failed attempt modifies, so a replay is a fresh exchange
    plus a fresh block.  Every attempt is charged to the guard's
    tallies, and the returned run is built from those tallies.
    """
    machine = source.machine
    pattern = compiled.pattern
    params = compiled.params
    rows, cols = source.subgrid_shape
    pad = pattern.border_widths().max_width

    source_stack = machine.stacked(source.name)
    result_stack = machine.stacked(result.name)
    if source_stack is None or result_stack is None:
        return None
    coeff_names = array_coefficient_names(pattern)
    coeff_stacks = {}
    for name in coeff_names:
        stack = machine.stacked(name)
        if stack is None:
            return None
        coeff_stacks[name] = stack

    deep = depth * pad
    padded_shape = (rows + 2 * deep, cols + 2 * deep)
    halo_name = halo_buffer_name(source.name)
    ping, pong = machine.pingpong_stacked(halo_name, padded_shape)
    scratch = machine.scratch_stacked(f"{halo_name}__prod__", padded_shape)

    costs = blocked_costs(compiled, source.subgrid_shape, iterations, depth)
    blocks = list(block_steps(iterations, depth))

    # Hard-fault restart state: a dead node detected mid-run loses its
    # tile of every buffer, so recovery remaps it onto a spare, restores
    # source/coefficients from the genesis checkpoint, and restarts the
    # whole blocked run from the pristine source.  Coefficient exchanges
    # and blocks below the high-water marks were already charged
    # canonically; their re-runs are routed to the replay buckets.
    coeff_high = 0
    block_high = 0
    while True:
        try:
            # Coefficient deep halos: exchanged once, reused by every
            # block.  The halo ring's locally recomputed points need the
            # neighbors' coefficient values to reproduce their bits.
            deep_coeffs = {}
            if guard is not None:
                guard.role = "coeff"
            try:
                for coeff_index, name in enumerate(coeff_names):
                    if guard is not None:
                        guard.replaying = coeff_index < coeff_high
                    buf = machine.scratch_stacked(
                        f"{name}__deep__", padded_shape
                    )
                    exchange_halo_deep(
                        coeff_stacks[name],
                        buf,
                        pattern,
                        (rows, cols),
                        params,
                        depth,
                        guard=guard,
                    )
                    deep_coeffs[name] = buf
                    coeff_high = max(coeff_high, coeff_index + 1)
            finally:
                if guard is not None:
                    guard.role = "source"
                    guard.replaying = False

            current = source_stack
            for index, steps in enumerate(blocks):
                if guard is not None:
                    guard.replaying = index < block_high
                deep_b = steps * pad
                if deep_b < deep:
                    # Tail block: center a shallower padded window
                    # inside the full-depth buffers so the interior
                    # stays aligned.
                    delta = deep - deep_b
                    window = (
                        slice(None),
                        slice(None),
                        slice(delta, delta + rows + 2 * deep_b),
                        slice(delta, delta + cols + 2 * deep_b),
                    )
                    ping_v, pong_v = ping[window], pong[window]
                    coeffs_v = {n: b[window] for n, b in deep_coeffs.items()}
                else:
                    ping_v, pong_v, coeffs_v = ping, pong, deep_coeffs
                block_cycles, block_strips = (
                    block_compute_cycles(compiled, (rows, cols), steps)
                    if guard is not None
                    else (0, 0)
                )
                replays = 0
                while True:
                    exchange_halo_deep(
                        current, ping_v, pattern, (rows, cols), params,
                        steps, guard=guard,
                    )
                    try:
                        final, fixed = machine_execute_blocked(
                            pattern,
                            ping=ping_v,
                            pong=pong_v,
                            deep_coeffs=coeffs_v,
                            subgrid_shape=(rows, cols),
                            pad=pad,
                            steps=steps,
                            scratch=scratch,
                            guard=guard,
                        )
                    except FaultError:
                        # guard is not None here: only the guarded
                        # executor raises.  The failed attempt still
                        # cost its compute (a recovery charge); the
                        # block input (``current``) is untouched, so a
                        # replay is a fresh exchange plus a fresh
                        # block.  The wasted exchange is reclaimed into
                        # the replay bucket so the retry's exchange
                        # charges canonically exactly once.
                        guard.charge_compute(
                            block_cycles, block_strips, recovery=True
                        )
                        if replays >= guard.policy.max_replays:
                            raise
                        replays += 1
                        if not guard.replaying:
                            guard.reclaim_exchange(
                                deep_exchange_cost(
                                    pattern, (rows, cols), params, steps
                                ).cycles
                            )
                        guard.note_rollback(steps)
                        continue
                    if guard is not None:
                        guard.charge_compute(block_cycles, block_strips)
                    break
                result_stack[...] = final[
                    :, :, deep_b : deep_b + rows, deep_b : deep_b + cols
                ]
                block_high = max(block_high, index + 1)
                if guard is not None:
                    guard.replaying = False
                if guard is not None and guard.policy.abft:
                    # ABFT per temporal block: seal the freshly written
                    # result, give the injector its SDC window, and
                    # verify before the next block's deep exchange (or
                    # the caller) reads the stack.  A single corrupted
                    # word is forward-corrected in place; multi-cell
                    # damage cannot replay here (the block input was
                    # just overwritten), so the raised
                    # SdcUncorrectableError degrades blocked->fast,
                    # restarting from the pristine source.
                    machine.storage.seal_abft(
                        result.name, seal_checksums(result_stack)
                    )
                    guard.charge_abft(rows * cols, seals=1)
                    guard.inject_sdc(
                        [(f"blocked result stack {result.name!r}",
                          result_stack)]
                    )
                    guard.charge_abft(rows * cols, verifies=1)
                    corrected = verify_and_correct(
                        result_stack,
                        machine.storage.get_abft(result.name),
                        site=f"abft block {index} result",
                        guard=guard,
                    )
                    if corrected:
                        guard.charge_sdc_correction(corrected)
                if fixed:
                    # Every remaining iterate reproduces this one bit
                    # for bit; stop computing.  The accounting still
                    # charges the whole run (``costs`` unguarded,
                    # explicit charges under guard).
                    if guard is not None:
                        for later_steps in blocks[index + 1 :]:
                            guard.charge_skipped_exchanges(
                                1,
                                deep_exchange_cost(
                                    pattern, (rows, cols), params,
                                    later_steps,
                                ).cycles,
                            )
                            guard.charge_compute(
                                *block_compute_cycles(
                                    compiled, (rows, cols), later_steps
                                )
                            )
                    break
                current = result_stack
            break
        except NodeDeadError as dead:
            # guard is not None here: only guarded exchanges raise.
            # Remap the dead node onto a spare, restore the lost tile's
            # source/coefficients from the genesis checkpoint, and
            # restart the blocked run from the pristine source --
            # completed blocks replay into the replay buckets.
            guard.replaying = False
            guard.recover_dead_node(dead.coord)
            guard.note_rollback(sum(blocks[:block_high]))

    if guard is not None:
        if guard.policy.abft:
            machine.storage.clear_abft(result.name)
        return StencilRun(
            compiled=compiled,
            machine=machine,
            result=result,
            iterations=iterations,
            compute_cycles=schedule.compute_cycles(params),
            comm=exchange_cost(pattern, source.subgrid_shape, params),
            half_strips=schedule.num_half_strips,
            exact=False,
            batched=True,
            block_depth=depth,
            num_exchanges=guard.exchanges,
            coeff_exchanges=guard.coeff_exchanges,
            block_comm=costs.block_comm,
            total_comm_cycles=guard.comm_cycles,
            total_compute_cycles=guard.compute_cycles,
            total_half_strips=guard.half_strips,
            faults=guard.stats,
        )
    return StencilRun(
        compiled=compiled,
        machine=machine,
        result=result,
        iterations=iterations,
        compute_cycles=schedule.compute_cycles(params),
        comm=exchange_cost(pattern, source.subgrid_shape, params),
        half_strips=schedule.num_half_strips,
        exact=False,
        batched=True,
        block_depth=depth,
        num_exchanges=costs.num_exchanges,
        coeff_exchanges=costs.coeff_exchanges,
        block_comm=costs.block_comm,
        total_comm_cycles=costs.total_comm_cycles,
        total_compute_cycles=costs.total_compute_cycles,
        total_half_strips=costs.total_half_strips,
    )


def _apply_resilient(
    compiled: CompiledStencil,
    source: CMArray,
    result: CMArray,
    schedule: StripSchedule,
    iterations: int,
    exact: bool,
    batched: bool,
    depth: int,
    guard: FaultGuard,
) -> StencilRun:
    """The guarded run: walk the graceful-degradation ladder.

    Rungs, fastest first: blocked fast path -> unblocked fast path ->
    exact per-node executor.  All three are bit-identical in float32, so
    stepping down after repeated unrecoverable faults changes the run's
    cost, never its results.  The exact rung's datapath is modeled as
    ECC-protected (no executor faults are injected there); the source
    array is never modified, so each rung restarts from pristine input.
    Guard tallies accumulate across rungs -- a degraded run's totals
    include the cycles its failed rungs burned.

    Hard faults add a final implicit rung past "exact": spare-node
    remapping.  Arming the guard against the machine enables detection
    (exchange deadlines, route-failure probes); when the machine is
    configured with spares, a genesis checkpoint of every distributed
    stack (source, coefficients, result) is taken up front -- the
    reference a remap restores the lost tile from.  A dead node is
    repaired *inside* the current rung (remap + restore + replay), not
    by stepping down: no rung can outrun a node whose memory is gone.
    :class:`NoSpareError` and :class:`LinkDownError` are therefore
    unrecoverable-by-degradation and propagate immediately -- the typed
    failure the no-spare guarantee demands, never silent corruption.
    """
    machine = source.machine
    guard.attach_machine(machine)
    if machine.has_spares and guard.genesis is None:
        seen = set()
        names = []
        for name in machine.storage.names:
            stack = machine.storage.get(name)
            if stack is None or id(stack) in seen:
                continue
            seen.add(id(stack))
            names.append(name)
        guard.genesis = machine.storage.checkpoint(names)
        guard.charge_checkpoint(machine.migration_words())
    rungs = ["exact"] if exact else (
        ["blocked", "fast", "exact"] if depth > 1 else ["fast", "exact"]
    )
    for index, rung in enumerate(rungs):
        try:
            if rung == "blocked":
                run = _apply_blocked(
                    compiled, source, result, schedule, depth, iterations,
                    guard=guard,
                )
                if run is not None:
                    return run
                # Not stack-backed: the unblocked rung is the real
                # starting point, not a degradation.
                continue
            return _iterate_resilient(
                compiled, source, result, schedule, iterations,
                exact=rung == "exact", batched=batched, guard=guard,
            )
        except (NoSpareError, LinkDownError):
            # Hardware is gone and no spare capacity remains: stepping
            # down a rung cannot help, and limping on would corrupt.
            raise
        except FaultError:
            if index == len(rungs) - 1:
                raise
            guard.note_degradation(f"{rung}->{rungs[index + 1]}")
    raise DegradationExhaustedError(
        "no execution rung completed"
    )  # pragma: no cover - the exact rung returns or raises


def _iterate_resilient(
    compiled: CompiledStencil,
    source: CMArray,
    result: CMArray,
    schedule: StripSchedule,
    iterations: int,
    *,
    exact: bool,
    batched: bool,
    guard: FaultGuard,
) -> StencilRun:
    """One rung's iterated loop with retry, checkpoint, and rollback.

    Semantically the unblocked loop of :func:`apply_stencil`, with the
    detection + recovery protocol threaded through: every exchange is
    checksummed and retried by :func:`~repro.runtime.halo.exchange_halo`
    itself; a detected executor fault is recomputed up to
    ``policy.max_retries`` times, then the run rolls back to the last
    periodic checkpoint (or to iteration 0, replaying from the untouched
    source) and replays, bounded by ``policy.max_replays``.  Every
    attempt -- exchanges, recomputes, checkpoints, replays -- is charged
    to the guard, and the returned run is built from its tallies.
    """
    machine = source.machine
    pattern = compiled.pattern
    params = compiled.params
    policy = guard.policy
    halo_name = halo_buffer_name(source.name)
    comm = exchange_cost(pattern, source.subgrid_shape, params)
    pad = comm.pad
    rows, cols = result.subgrid_shape
    pass_half_strips = schedule.num_half_strips

    checkpoint = None
    checkpoint_iteration = 0
    replays = 0
    replay_high = 0
    exact_cycles: Optional[int] = None
    ran_batched = False
    # ABFT protocol (policy.abft, stack-backed, non-exact rungs only --
    # the exact rung's datapath is modeled ECC-protected): seal the
    # result stack's row/column checksums after every pass, give the
    # injector its SDC window once the periodic checkpoint is safely
    # taken, and verify+forward-correct as the iteration's last act, so
    # neither the next exchange nor the caller ever reads unverified
    # bits.  Multi-cell damage rolls back like an executor fault.
    result_stack = machine.stacked(result.name)
    abft_on = policy.abft and not exact and result_stack is not None
    k = 0
    while k < iterations:
        # Iterations below the replay high-water mark were already
        # charged to the canonical counters once; their re-runs are
        # routed to the replay buckets so totals keep reconciling as
        # closed form + recovery.
        guard.replaying = k < replay_high
        was_replay = guard.replaying
        try:
            exchange_halo(
                source if k == 0 else result,
                pattern,
                params,
                into=halo_name,
                batched=batched,
                guard=guard,
            )
        except NodeDeadError as dead:
            # A participant's memory is gone.  Detected before any data
            # moved (nothing was charged for this exchange): remap the
            # logical coordinate onto a spare, restore the migrated
            # tile's source/coefficients from the genesis checkpoint,
            # rewind the iterate to the last periodic checkpoint, and
            # replay.  Raises NoSpareError when no spare remains.
            guard.replaying = False
            guard.recover_dead_node(dead.coord)
            if checkpoint is not None:
                machine.storage.restore(checkpoint)
                resume = checkpoint_iteration
            else:
                resume = 0
            guard.note_rollback(k - resume)
            replay_high = max(replay_high, k)
            k = resume
            continue
        attempt = 0
        rolled_back = False
        while True:
            attempt += 1
            try:
                exact_cycles, ran_batched = _execute_pass_resilient(
                    compiled, machine, schedule, source.name, result.name,
                    pad, exact=exact, batched=batched,
                    expected_cycles=exact_cycles, guard=guard,
                )
            except FaultError:
                guard.charge_compute(
                    exact_cycles
                    if exact and exact_cycles is not None
                    else schedule.compute_cycles(params),
                    pass_half_strips,
                    recovery=True,
                )
                if attempt > policy.max_retries:
                    # Recomputing alone did not clear it: roll back to
                    # the last checkpoint (or the untouched source) and
                    # replay the iterations since.  This iteration's
                    # exchange was already charged canonically; reclaim
                    # it into the replay bucket so the post-rollback
                    # re-exchange charges canonically exactly once.
                    if replays >= policy.max_replays:
                        raise
                    replays += 1
                    if not was_replay:
                        guard.reclaim_exchange(comm.cycles)
                    if checkpoint is not None:
                        machine.storage.restore(checkpoint)
                        resume = checkpoint_iteration
                    else:
                        resume = 0
                    guard.note_rollback(k - resume + 1)
                    replay_high = max(replay_high, k)
                    k = resume
                    rolled_back = True
                    break
                guard.note_recompute()
                continue
            guard.charge_compute(
                exact_cycles if exact else schedule.compute_cycles(params),
                pass_half_strips,
            )
            break
        guard.replaying = False
        if rolled_back:
            continue
        k += 1
        if abft_on:
            machine.storage.seal_abft(
                result.name, seal_checksums(result_stack)
            )
            guard.charge_abft(rows * cols, seals=1)
        if k < iterations and (
            _at_fixed_point(machine, halo_name, result.name, pad)
            if ran_batched
            else _at_fixed_point_per_node(machine, halo_name, result.name, pad)
        ):
            # The iterate equals its own input; every later iteration
            # reproduces it bit for bit.  Charge the skipped iterations'
            # exchanges and compute, exactly like the unguarded path.
            skipped = iterations - k
            guard.charge_skipped_exchanges(skipped, comm.cycles)
            guard.charge_compute(
                skipped
                * (exact_cycles if exact else schedule.compute_cycles(params)),
                skipped * pass_half_strips,
            )
            break
        if (
            policy.checkpoint_interval > 0
            and k < iterations
            and k % policy.checkpoint_interval == 0
            and machine.stacked(result.name) is not None
        ):
            checkpoint = machine.storage.checkpoint([result.name])
            checkpoint_iteration = k
            guard.charge_checkpoint(rows * cols)
        if abft_on:
            # The SDC window: the checkpoint (if due) is already taken,
            # so rollback state is always clean; the strike lands in the
            # resident result tiles where no message checksum looks.
            guard.inject_sdc(
                [(f"result stack {result.name!r}", result_stack)]
            )
            guard.charge_abft(rows * cols, verifies=1)
            try:
                corrected = verify_and_correct(
                    result_stack,
                    machine.storage.get_abft(result.name),
                    site=f"abft iteration {k - 1} result",
                    guard=guard,
                )
            except SdcUncorrectableError:
                # Forward correction is out; fall back to the same
                # checkpoint/rollback ladder an executor fault uses.
                # This iteration's exchange and compute were charged
                # canonically and stand; every re-run below the new
                # high-water mark lands in the replay buckets.
                if replays >= policy.max_replays:
                    raise
                replays += 1
                if checkpoint is not None:
                    machine.storage.restore(checkpoint)
                    resume = checkpoint_iteration
                else:
                    resume = 0
                guard.note_rollback(k - resume)
                replay_high = max(replay_high, k)
                k = resume
                continue
            if corrected:
                guard.charge_sdc_correction(corrected)

    if abft_on:
        machine.storage.clear_abft(result.name)
    return StencilRun(
        compiled=compiled,
        machine=machine,
        result=result,
        iterations=iterations,
        compute_cycles=(
            exact_cycles if exact else schedule.compute_cycles(params)
        ),
        comm=comm,
        half_strips=pass_half_strips,
        exact=exact,
        batched=ran_batched,
        num_exchanges=guard.exchanges,
        total_comm_cycles=guard.comm_cycles,
        total_compute_cycles=guard.compute_cycles,
        total_half_strips=guard.half_strips,
        faults=guard.stats,
    )


def _execute_pass_resilient(
    compiled: CompiledStencil,
    machine: CM2,
    schedule: StripSchedule,
    source_name: str,
    result_name: str,
    pad: int,
    *,
    exact: bool,
    batched: bool,
    expected_cycles: Optional[int],
    guard: FaultGuard,
) -> Tuple[Optional[int], bool]:
    """One executor pass under guard; ``(exact_cycles, ran_batched)``.

    The exact rung's cycle-stepped datapath is modeled as ECC-protected:
    no faults are injected there and its output is trusted verbatim --
    the floor of the degradation ladder.
    """
    pattern = compiled.pattern
    if exact:
        cycles = expected_cycles
        for node in machine.nodes():
            node_cycles = node_execute_exact(
                compiled,
                node,
                schedule,
                source_name=source_name,
                result_name=result_name,
                halo=pad,
            )
            if cycles is not None and node_cycles != cycles:
                raise AssertionError(
                    "SIMD invariant violated: nodes disagree on cycles"
                )
            cycles = node_cycles
        return cycles, False
    ran_batched = batched and machine_execute_fast(
        pattern,
        machine,
        source_name=source_name,
        result_name=result_name,
        halo=pad,
        guard=guard,
    )
    if not ran_batched:
        for node in machine.nodes():
            node_execute_fast(
                pattern,
                node,
                source_name=source_name,
                result_name=result_name,
                halo=pad,
            )
        for node in machine.nodes():
            guard.verify_finite(
                node.memory.buffer(result_name),
                f"fast executor result {result_name!r} on "
                f"node({node.coord.row},{node.coord.col})",
            )
    return expected_cycles, ran_batched


def apply_stencil(
    compiled: CompiledStencil,
    source: CMArray,
    coefficients: Optional[Dict[str, CMArray]] = None,
    result: Union[CMArray, str, None] = None,
    *,
    iterations: int = 1,
    exact: bool = False,
    batched: bool = True,
    block_depth: Union[int, str] = 1,
    check_finite: bool = False,
    faults: Optional[FaultInjector] = None,
    resilience: Optional[ResiliencePolicy] = None,
    abft: bool = False,
    tenant: Optional[str] = None,
) -> StencilRun:
    """Apply a compiled stencil to a distributed array.

    Args:
        compiled: output of :func:`repro.compiler.compile_stencil` (or
            the Fortran/defstencil drivers).
        source: the shifted data array (``X`` in the paper).
        coefficients: coefficient arrays by statement name (``C1``...).
        result: the result array, its name, or None to create one named
            after the statement's left-hand side.
        iterations: how many times to apply the stencil.  The result of
            iteration *k* is the source of iteration *k+1*: before every
            iteration after the first, the halos are re-exchanged from
            the previous result, exactly as ``iterations`` sequential
            single calls would.  The source array itself is never
            modified; after the run, ``result`` holds the final iterate.
        exact: run the cycle-stepped datapath instead of the vectorized
            fast path.
        batched: let fast mode run the whole node grid as one stacked
            array operation per tap (the batched executor); per-node
            execution is used when False or when a buffer is not backed
            by machine storage.  Numerics are bit-identical either way.
        block_depth: temporal block depth ``T``.  ``1`` (the default)
            exchanges once per iteration; an int > 1 exchanges a
            ``T * pad``-deep halo once per block of ``T`` iterations and
            runs each block locally on ping-pong buffers; ``"auto"``
            picks the depth with the lowest modeled elapsed time (see
            :func:`repro.compiler.driver.select_block_depth`).  Depths
            are clamped to what the subgrid supports; blocking requires
            the batched fast path and silently resolves to 1 otherwise.
            Results are bit-identical at every depth.
        check_finite: validate up front that the source, coefficient,
            and fused extra-term arrays contain no NaN/Inf, raising
            :class:`~repro.runtime.faults.NonFiniteInputError` naming
            the offending array instead of silently propagating them
            through ``iterations`` applications.
        faults: a seeded
            :class:`~repro.runtime.faults.FaultInjector` for chaos
            runs.  Supplying one (or ``resilience``) switches the run
            onto the guarded path: checksummed, retried exchanges, a
            parity-sealed blocked executor, periodic checkpoints with
            rollback-and-replay, and the graceful-degradation ladder
            (blocked -> fast -> exact, all bit-identical).  The run's
            :class:`~repro.runtime.faults.FaultStats` rides on the
            returned :attr:`StencilRun.faults`.
        resilience: detection/recovery knobs for the guarded path (a
            :class:`~repro.runtime.faults.ResiliencePolicy`); defaults
            apply when only ``faults`` is given.
        abft: shorthand that switches the run onto the guarded path
            with :attr:`ResiliencePolicy.abft` enabled -- row/column
            checksums sealed over the result stack every iteration (or
            temporal block), verified before any consumer reads it,
            single corrupted words forward-corrected in place (see
            :mod:`repro.runtime.abft`).  Composes with ``resilience``
            (the policy is upgraded via ``dataclasses.replace``) and
            with ``faults`` (required for injecting
            :attr:`~repro.runtime.faults.FaultKind.SDC`).
        tenant: tenant id scoping the compile-driver cache telemetry
            (the stencil service passes each job's tenant; results and
            cache *contents* are tenant-agnostic either way).

    Returns:
        a :class:`StencilRun` with the result and full cost accounting.
    """
    if iterations < 1:
        raise ValueError("iterations must be positive")
    machine = source.machine
    pattern = compiled.pattern
    coefficients = coefficients or {}
    if result is None:
        result = pattern.result
    if isinstance(result, str):
        result = CMArray(result, machine, source.global_shape)
    check_arrays(compiled, source, coefficients, result)
    ensure_no_aliasing(compiled, source, coefficients, result)
    if check_finite:
        check_finite_arrays(compiled, source, coefficients)

    schedule = StripSchedule.cached(compiled, source.subgrid_shape)
    params = compiled.params
    halo_name = halo_buffer_name(source.name)
    depth = _resolve_block_depth(
        compiled, source, iterations, exact, batched, block_depth, tenant
    )
    ran_batched = False

    if abft:
        if resilience is None:
            resilience = ResiliencePolicy(abft=True)
        elif not resilience.abft:
            resilience = replace(resilience, abft=True)

    if faults is not None or resilience is not None:
        guard = FaultGuard(policy=resilience, injector=faults)
        with _coefficient_bindings(machine, coefficients):
            return _apply_resilient(
                compiled, source, result, schedule, iterations,
                exact, batched, depth, guard,
            )

    with _coefficient_bindings(machine, coefficients):
        if depth > 1:
            blocked = _apply_blocked(
                compiled, source, result, schedule, depth, iterations
            )
            if blocked is not None:
                return blocked
        comm = exchange_halo(source, pattern, params, batched=batched)
        pad = comm.pad
        exchanges = 1
        comm_cycles = comm.cycles
        cycles = None
        for iteration in range(iterations):
            if iteration:
                # Feed the previous iterate back: the result becomes the
                # source by re-exchanging its halo into the same padded
                # buffer the compiled plans read.
                repeat = exchange_halo(
                    result, pattern, params, into=halo_name, batched=batched
                )
                exchanges += 1
                comm_cycles += repeat.cycles
            if exact:
                for node in machine.nodes():
                    node_cycles = node_execute_exact(
                        compiled,
                        node,
                        schedule,
                        source_name=source.name,
                        result_name=result.name,
                        halo=pad,
                    )
                    if cycles is not None and node_cycles != cycles:
                        raise AssertionError(
                            "SIMD invariant violated: nodes disagree on cycles"
                        )
                    cycles = node_cycles
            else:
                ran_batched = batched and machine_execute_fast(
                    pattern,
                    machine,
                    source_name=source.name,
                    result_name=result.name,
                    halo=pad,
                )
                if not ran_batched:
                    for node in machine.nodes():
                        node_execute_fast(
                            pattern,
                            node,
                            source_name=source.name,
                            result_name=result.name,
                            halo=pad,
                        )
                if iteration < iterations - 1 and (
                    _at_fixed_point(machine, halo_name, result.name, pad)
                    if ran_batched
                    else _at_fixed_point_per_node(
                        machine, halo_name, result.name, pad
                    )
                ):
                    # The iterate equals its own input, so every later
                    # iteration reproduces it bit for bit; stop computing.
                    # The cost accounting still charges all iterations,
                    # exchanges included.
                    skipped = iterations - 1 - iteration
                    exchanges += skipped
                    comm_cycles += skipped * comm.cycles
                    break
    compute_cycles = cycles if exact else schedule.compute_cycles(params)

    return StencilRun(
        compiled=compiled,
        machine=machine,
        result=result,
        iterations=iterations,
        compute_cycles=compute_cycles,
        comm=comm,
        half_strips=schedule.num_half_strips,
        exact=exact,
        batched=ran_batched,
        num_exchanges=exchanges,
        total_comm_cycles=comm_cycles,
    )
