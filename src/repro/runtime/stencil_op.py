"""The user-facing stencil application entry point.

``apply_stencil`` does what the paper's run-time library does for one
call: allocate temporary halo storage, perform the up-front neighbor
exchange, then drive every node's subgrid through the strip-mined
compiled plans -- and returns a complete accounting of where the time
went.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from ..compiler.plan import CompiledStencil
from ..machine.machine import CM2
from ..machine.params import MachineParams
from .cm_array import CMArray
from .executor import (
    ExecutionSetupError,
    check_arrays,
    machine_execute_fast,
    node_execute_exact,
    node_execute_fast,
)
from .halo import CommStats, exchange_halo, halo_buffer_name
from .strips import StripSchedule


@dataclass(frozen=True)
class StencilRun:
    """The outcome of one (possibly iterated) stencil call.

    Cycle counts are per node per iteration; the CM-2 is synchronous
    SIMD, so they are identical on every node and independent of machine
    size.

    Attributes:
        compiled: the plan that ran.
        machine: the machine it ran on.
        result: the distributed result array.
        iterations: how many times the computation was (or is modeled to
            be) applied.
        compute_cycles: node cycles per iteration inside the microcode
            loops (strip mining included).
        comm: halo-exchange cost per iteration.
        half_strips: microcode invocations per iteration (drives the
            front-end overhead).
        exact: whether the cycle count came from the cycle-stepped
            datapath (True) or the closed-form model (False).
        batched: whether fast mode ran the batched whole-machine
            executor (False in exact mode or after a per-node fallback).
    """

    compiled: CompiledStencil
    machine: CM2
    result: CMArray
    iterations: int
    compute_cycles: int
    comm: CommStats
    half_strips: int
    exact: bool
    batched: bool = False

    @property
    def params(self) -> MachineParams:
        return self.compiled.params

    @property
    def cycles_per_iteration(self) -> int:
        return self.compute_cycles + self.comm.cycles

    @property
    def machine_seconds_per_iteration(self) -> float:
        return self.params.seconds(self.cycles_per_iteration)

    @property
    def host_seconds_per_iteration(self) -> float:
        return self.params.host_overhead_s(self.half_strips)

    @property
    def seconds_per_iteration(self) -> float:
        """Elapsed wall-clock per iteration: machine time plus the
        front-end time to issue the calls (the host and the sequencer do
        not overlap in this SIMD regime)."""
        return self.machine_seconds_per_iteration + self.host_seconds_per_iteration

    @property
    def elapsed_seconds(self) -> float:
        return self.iterations * self.seconds_per_iteration

    @property
    def useful_flops_per_node_per_iteration(self) -> int:
        rows, cols = self.result.subgrid_shape
        return rows * cols * self.compiled.pattern.useful_flops_per_point()

    @property
    def useful_flops(self) -> int:
        return (
            self.useful_flops_per_node_per_iteration
            * self.machine.num_nodes
            * self.iterations
        )

    @property
    def mflops(self) -> float:
        """Sustained useful Mflops over the whole run."""
        return self.useful_flops / self.elapsed_seconds / 1e6

    @property
    def gflops(self) -> float:
        return self.mflops / 1e3

    def describe(self) -> str:
        rows, cols = self.result.subgrid_shape
        return (
            f"{self.compiled.pattern.name or 'stencil'} on "
            f"{self.machine.num_nodes} nodes, {rows}x{cols} subgrids, "
            f"{self.iterations} iterations: {self.elapsed_seconds:.2f} s, "
            f"{self.mflops:.1f} Mflops"
        )


@contextmanager
def _coefficient_bindings(machine: CM2, coefficients: Dict[str, CMArray]):
    """Point statement coefficient names at the caller's arrays, scoped
    to one call.

    The compiled plans stream coefficients by *statement* name; when a
    caller passes arrays stored under different names (e.g. through the
    subroutine-call interface), the statement names are aliased to them
    -- run-time base addresses, as the sequencer would take them.  The
    previous bindings (if any) are restored on exit, so repeated calls
    with different arrays never see each other's aliases and node memory
    does not accumulate stale names.
    """
    saved = []
    for statement_name, array in coefficients.items():
        if array.name == statement_name:
            continue
        previous_stack = machine.storage.get(statement_name)
        previous_views = [
            node.memory.view(statement_name) for node in machine.nodes()
        ]
        machine.alias_stacked(statement_name, array.name)
        saved.append((statement_name, previous_stack, previous_views))
    try:
        yield
    finally:
        for statement_name, previous_stack, previous_views in reversed(saved):
            if previous_stack is None:
                machine.storage.free(statement_name)
            else:
                machine.storage.bind(statement_name, previous_stack)
            for node, view in zip(machine.nodes(), previous_views):
                if view is None:
                    node.memory.free(statement_name)
                else:
                    node.memory.install_view(statement_name, view)


def _at_fixed_point(
    machine: CM2, halo_name: str, result_name: str, pad: int
) -> bool:
    """True when the result bit-equals the interior of the padded input
    it was computed from -- a fixed point.  Every subsequent iteration
    would then reproduce the same bits (same input, same taps), so the
    iteration loop can stop computing early without changing the answer.
    NaNs compare unequal, so diverging runs are never cut short.
    """
    padded = machine.storage.get(halo_name)
    result = machine.storage.get(result_name)
    if padded is None or result is None:
        return False
    rows, cols = result.shape[2:]
    interior = padded[:, :, pad : pad + rows, pad : pad + cols]
    return np.array_equal(result, interior)


def apply_stencil(
    compiled: CompiledStencil,
    source: CMArray,
    coefficients: Optional[Dict[str, CMArray]] = None,
    result: Union[CMArray, str, None] = None,
    *,
    iterations: int = 1,
    exact: bool = False,
    batched: bool = True,
) -> StencilRun:
    """Apply a compiled stencil to a distributed array.

    Args:
        compiled: output of :func:`repro.compiler.compile_stencil` (or
            the Fortran/defstencil drivers).
        source: the shifted data array (``X`` in the paper).
        coefficients: coefficient arrays by statement name (``C1``...).
        result: the result array, its name, or None to create one named
            after the statement's left-hand side.
        iterations: how many times to apply the stencil.  The result of
            iteration *k* is the source of iteration *k+1*: before every
            iteration after the first, the halos are re-exchanged from
            the previous result, exactly as ``iterations`` sequential
            single calls would.  The source array itself is never
            modified; after the run, ``result`` holds the final iterate.
        exact: run the cycle-stepped datapath instead of the vectorized
            fast path.
        batched: let fast mode run the whole node grid as one stacked
            array operation per tap (the batched executor); per-node
            execution is used when False or when a buffer is not backed
            by machine storage.  Numerics are bit-identical either way.

    Returns:
        a :class:`StencilRun` with the result and full cost accounting.
    """
    if iterations < 1:
        raise ValueError("iterations must be positive")
    machine = source.machine
    pattern = compiled.pattern
    coefficients = coefficients or {}
    if result is None:
        result = pattern.result
    if isinstance(result, str):
        result = CMArray(result, machine, source.global_shape)
    check_arrays(compiled, source, coefficients, result)

    schedule = StripSchedule.cached(compiled, source.subgrid_shape)
    params = compiled.params
    halo_name = halo_buffer_name(source.name)
    ran_batched = False

    with _coefficient_bindings(machine, coefficients):
        comm = exchange_halo(source, pattern, params, batched=batched)
        pad = comm.pad
        cycles = None
        for iteration in range(iterations):
            if iteration:
                # Feed the previous iterate back: the result becomes the
                # source by re-exchanging its halo into the same padded
                # buffer the compiled plans read.
                exchange_halo(
                    result, pattern, params, into=halo_name, batched=batched
                )
            if exact:
                for node in machine.nodes():
                    node_cycles = node_execute_exact(
                        compiled,
                        node,
                        schedule,
                        source_name=source.name,
                        result_name=result.name,
                        halo=pad,
                    )
                    if cycles is not None and node_cycles != cycles:
                        raise AssertionError(
                            "SIMD invariant violated: nodes disagree on cycles"
                        )
                    cycles = node_cycles
            else:
                ran_batched = batched and machine_execute_fast(
                    pattern,
                    machine,
                    source_name=source.name,
                    result_name=result.name,
                    halo=pad,
                )
                if not ran_batched:
                    for node in machine.nodes():
                        node_execute_fast(
                            pattern,
                            node,
                            source_name=source.name,
                            result_name=result.name,
                            halo=pad,
                        )
                elif iteration < iterations - 1 and _at_fixed_point(
                    machine, halo_name, result.name, pad
                ):
                    # The iterate equals its own input, so every later
                    # iteration reproduces it bit for bit; stop computing.
                    # The cost accounting still charges all iterations.
                    break
    compute_cycles = cycles if exact else schedule.compute_cycles(params)

    return StencilRun(
        compiled=compiled,
        machine=machine,
        result=result,
        iterations=iterations,
        compute_cycles=compute_cycles,
        comm=comm,
        half_strips=schedule.num_half_strips,
        exact=exact,
        batched=ran_batched,
    )
