"""Node-level execution of compiled stencils.

Two execution modes with identical semantics:

* **exact** -- every node's half-strips run through the cycle-stepped
  sequencer + WTL3164 model: real register contents, ring-buffer
  rotation, writeback timing, and exact cycle counts.  Used by the
  correctness tests (and usable anywhere, just slow).
* **fast** -- numerics computed vectorized per node in the *same
  accumulation order* the schedules use (so results are bit-identical in
  float32), with cycles from the closed-form cost model that the exact
  mode validates.  Used by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..compiler.plan import CompiledStencil
from ..machine.machine import CM2
from ..machine.node import Node
from ..machine.sequencer import Sequencer
from ..stencil.pattern import CoeffKind, StencilPattern
from .cm_array import CMArray
from .halo import halo_buffer_name
from .strips import StripSchedule


class ExecutionSetupError(Exception):
    """Arrays handed to the executor do not match the compiled stencil."""


def check_arrays(
    compiled: CompiledStencil,
    source: CMArray,
    coefficients: Dict[str, CMArray],
    result: CMArray,
) -> None:
    """Validate that the run-time arrays match the compiled statement."""
    pattern = compiled.pattern
    if result.global_shape != source.global_shape:
        raise ExecutionSetupError(
            f"result shape {result.global_shape} != source shape "
            f"{source.global_shape}"
        )
    for name in pattern.coefficient_names():
        if name not in coefficients:
            raise ExecutionSetupError(
                f"missing coefficient array {name!r} "
                f"(statement needs {pattern.coefficient_names()})"
            )
        if coefficients[name].global_shape != source.global_shape:
            raise ExecutionSetupError(
                f"coefficient {name!r} shape "
                f"{coefficients[name].global_shape} != source shape "
                f"{source.global_shape}"
            )
    for term in getattr(pattern, "extra_terms", ()):
        sample_node = next(iter(source.machine.nodes()))
        if not sample_node.memory.has_buffer(term.source):
            raise ExecutionSetupError(
                f"missing fused extra-source array {term.source!r}; create "
                "it as a CMArray on the same machine before applying"
            )


def node_execute_exact(
    compiled: CompiledStencil,
    node: Node,
    schedule: StripSchedule,
    *,
    source_name: str,
    result_name: str,
    halo: int,
) -> int:
    """Run one node's whole subgrid through the cycle-stepped datapath.

    Returns the exact cycle count (identical on every node: the machine
    is synchronous SIMD).
    """
    params = compiled.params
    node.memory.ensure_constant_pages(compiled.scalar_coefficient_values())
    any_plan = next(iter(compiled.plans.values()))
    fpu = node.make_fpu(
        zero_reg=any_plan.allocation.zero_reg,
        unit_reg=any_plan.allocation.unit_reg,
    )
    sequencer = Sequencer(
        params,
        node.memory,
        source_buffer=halo_buffer_name(source_name),
        result_buffer=result_name,
        halo=halo,
    )
    for strip in schedule.strips:
        fpu.stall(params.strip_setup_cycles, "strip-setup")
        for job in strip.half_strips:
            if job.lines > 0:
                sequencer.run_half_strip(strip.plan, job, fpu)
    fpu.drain()
    return fpu.stats.cycles


def node_execute_fast(
    pattern: StencilPattern,
    node: Node,
    *,
    source_name: str,
    result_name: str,
    halo: int,
) -> None:
    """Compute one node's subgrid vectorized, in schedule order.

    Accumulates taps in statement order with float32 rounding after every
    multiply and every add -- exactly the chained multiply-add semantics
    of the WTL3164 model, so the result is bit-identical to exact mode.
    """
    padded = node.memory.buffer(halo_buffer_name(source_name))
    result = node.memory.buffer(result_name)
    rows, cols = result.shape
    acc = np.zeros((rows, cols), dtype=np.float32)
    for tap in pattern.taps:
        coeff = _coefficient_subgrid(tap, node, rows, cols)
        if tap.is_constant_term:
            product = np.float32(1.0) * coeff
        else:
            window = padded[
                halo + tap.dy : halo + tap.dy + rows,
                halo + tap.dx : halo + tap.dx + cols,
            ]
            if tap.coeff.kind is CoeffKind.UNIT:
                product = np.float32(1.0) * window
            else:
                product = coeff * window
        acc = acc + product.astype(np.float32)
    # Fused extra terms join the chain after the base taps, in order.
    for term in getattr(pattern, "extra_terms", ()):
        data = node.memory.buffer(term.source)
        coeff = _term_coefficient_subgrid(term.coeff, node, rows, cols)
        acc = acc + (coeff * data).astype(np.float32)
    result[:] = acc


def _coefficient_subgrid(tap, node: Node, rows: int, cols: int) -> np.ndarray:
    return _term_coefficient_subgrid(tap.coeff, node, rows, cols)


def _term_coefficient_subgrid(
    coeff, node: Node, rows: int, cols: int
) -> np.ndarray:
    if coeff.kind is CoeffKind.ARRAY:
        return node.memory.buffer(coeff.name)
    if coeff.kind is CoeffKind.SCALAR:
        return np.full((rows, cols), np.float32(coeff.value), dtype=np.float32)
    return np.ones((rows, cols), dtype=np.float32)
