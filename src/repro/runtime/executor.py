"""Node-level execution of compiled stencils.

Two execution modes with identical semantics:

* **exact** -- every node's half-strips run through the cycle-stepped
  sequencer + WTL3164 model: real register contents, ring-buffer
  rotation, writeback timing, and exact cycle counts.  Used by the
  correctness tests (and usable anywhere, just slow).
* **fast** -- numerics computed vectorized per node in the *same
  accumulation order* the schedules use (so results are bit-identical in
  float32), with cycles from the closed-form cost model that the exact
  mode validates.  Used by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..compiler.plan import CompiledStencil
from ..machine.machine import CM2
from ..machine.node import Node
from ..machine.sequencer import Sequencer
from ..stencil.offsets import BoundaryMode
from ..stencil.pattern import CoeffKind, StencilPattern
from ..machine.memory import parity_word
from .cm_array import CMArray
from .faults import FaultGuard, NonFiniteInputError
from .halo import halo_buffer_name
from .strips import StripSchedule


class ExecutionSetupError(ValueError):
    """Arrays handed to the executor do not match the compiled stencil."""


def shape_mismatch(label: str, got, want) -> str:
    """A mismatch message naming the first offending axis and the
    expected extent there (instead of letting numpy raise a deep
    broadcast error from inside the tap loop)."""
    got = tuple(int(n) for n in got)
    want = tuple(int(n) for n in want)
    if len(got) != len(want):
        return (
            f"{label} shape {got} (rank {len(got)}) != "
            f"expected shape {want} (rank {len(want)})"
        )
    for axis, (g, w) in enumerate(zip(got, want)):
        if g != w:
            return (
                f"{label} shape {got}: axis {axis} has extent {g}, "
                f"expected extent {w} (full expected shape {want})"
            )
    return f"{label} shape {got} != expected shape {want}"


def check_arrays(
    compiled: CompiledStencil,
    source: CMArray,
    coefficients: Dict[str, CMArray],
    result: CMArray,
) -> None:
    """Validate that the run-time arrays match the compiled statement.

    Every array the tap loop will touch is shape-checked here --
    coefficients, fused extra sources, and fused extra-term coefficient
    arrays *whether or not* they were passed in ``coefficients`` -- so
    a mismatch raises a :class:`ExecutionSetupError` (a ``ValueError``)
    naming the offending axis, never a numpy broadcast error.
    """
    pattern = compiled.pattern
    if result.global_shape != source.global_shape:
        raise ExecutionSetupError(
            shape_mismatch(
                "result array", result.global_shape, source.global_shape
            )
        )
    for name in pattern.coefficient_names():
        if name not in coefficients:
            raise ExecutionSetupError(
                f"missing coefficient array {name!r} "
                f"(statement needs {pattern.coefficient_names()})"
            )
        if coefficients[name].global_shape != source.global_shape:
            raise ExecutionSetupError(
                shape_mismatch(
                    f"coefficient {name!r}",
                    coefficients[name].global_shape,
                    source.global_shape,
                )
            )
    extra_terms = getattr(pattern, "extra_terms", ())
    if extra_terms:
        sample_node = next(iter(source.machine.nodes()))
        subgrid_shape = source.subgrid_shape
        for term in extra_terms:
            buffer = sample_node.memory.view(term.source)
            if buffer is None:
                raise ExecutionSetupError(
                    f"missing fused extra-source array {term.source!r}; create "
                    "it as a CMArray on the same machine before applying"
                )
            if tuple(buffer.shape) != subgrid_shape:
                raise ExecutionSetupError(
                    shape_mismatch(
                        f"fused extra-source {term.source!r} subgrid",
                        tuple(buffer.shape),
                        subgrid_shape,
                    )
                )
            coeff = term.coeff
            if coeff.kind is not CoeffKind.ARRAY:
                continue
            if coeff.name in coefficients:
                # Previously unvalidated: a wrong-shaped extra-term
                # coefficient passed in ``coefficients`` surfaced as a
                # numpy broadcast error deep in the executor.
                if coefficients[coeff.name].global_shape != source.global_shape:
                    raise ExecutionSetupError(
                        shape_mismatch(
                            f"fused extra-term coefficient {coeff.name!r}",
                            coefficients[coeff.name].global_shape,
                            source.global_shape,
                        )
                    )
                continue
            coeff_buffer = sample_node.memory.view(coeff.name)
            if coeff_buffer is None:
                raise ExecutionSetupError(
                    f"missing fused extra-term coefficient {coeff.name!r}"
                )
            if tuple(coeff_buffer.shape) != subgrid_shape:
                raise ExecutionSetupError(
                    shape_mismatch(
                        f"fused extra-term coefficient {coeff.name!r} subgrid",
                        tuple(coeff_buffer.shape),
                        subgrid_shape,
                    )
                )


def check_finite_arrays(
    compiled: CompiledStencil,
    source: CMArray,
    coefficients: Dict[str, CMArray],
) -> None:
    """Reject NaN/Inf in the input arrays up front, naming the offender.

    The opt-in ``apply_stencil(check_finite=True)`` validation: without
    it, a single NaN in the source silently propagates through every
    iteration (the FPU saturates, it does not trap).
    """
    machine = source.machine

    def all_finite(name: str) -> bool:
        stack = machine.stacked(name)
        if stack is not None:
            return bool(np.isfinite(stack).all())
        return all(
            bool(np.isfinite(node.memory.buffer(name)).all())
            for node in machine.nodes()
        )

    names = [source.name]
    names += list(coefficients)
    for term in getattr(compiled.pattern, "extra_terms", ()):
        if term.source not in names:
            names.append(term.source)
        coeff = term.coeff
        if coeff.kind is CoeffKind.ARRAY and coeff.name not in names:
            names.append(coeff.name)
    for name in names:
        if not all_finite(name):
            raise NonFiniteInputError(
                f"input array {name!r} contains NaN/Inf "
                "(apply_stencil was called with check_finite=True)"
            )


def node_execute_exact(
    compiled: CompiledStencil,
    node: Node,
    schedule: StripSchedule,
    *,
    source_name: str,
    result_name: str,
    halo: int,
) -> int:
    """Run one node's whole subgrid through the cycle-stepped datapath.

    Returns the exact cycle count (identical on every node: the machine
    is synchronous SIMD).
    """
    params = compiled.params
    node.memory.ensure_constant_pages(compiled.scalar_coefficient_values())
    any_plan = next(iter(compiled.plans.values()))
    fpu = node.make_fpu(
        zero_reg=any_plan.allocation.zero_reg,
        unit_reg=any_plan.allocation.unit_reg,
    )
    sequencer = Sequencer(
        params,
        node.memory,
        source_buffer=halo_buffer_name(source_name),
        result_buffer=result_name,
        halo=halo,
    )
    for strip in schedule.strips:
        fpu.stall(params.strip_setup_cycles, "strip-setup")
        for job in strip.half_strips:
            if job.lines > 0:
                sequencer.run_half_strip(strip.plan, job, fpu)
    fpu.drain()
    return fpu.stats.cycles


def node_execute_fast(
    pattern: StencilPattern,
    node: Node,
    *,
    source_name: str,
    result_name: str,
    halo: int,
) -> None:
    """Compute one node's subgrid vectorized, in schedule order.

    Accumulates taps in statement order with float32 rounding after every
    multiply and every add -- exactly the chained multiply-add semantics
    of the WTL3164 model, so the result is bit-identical to exact mode.
    """
    padded = node.memory.buffer(halo_buffer_name(source_name))
    result = node.memory.buffer(result_name)
    rows, cols = result.shape
    acc = np.zeros((rows, cols), dtype=np.float32)
    # The FPU saturates silently; overflow to inf is a data property,
    # not an execution error.
    with np.errstate(over="ignore", invalid="ignore"):
        for tap in pattern.taps:
            coeff = _coefficient_subgrid(tap, node, rows, cols)
            if tap.is_constant_term:
                product = np.float32(1.0) * coeff
            else:
                window = padded[
                    halo + tap.dy : halo + tap.dy + rows,
                    halo + tap.dx : halo + tap.dx + cols,
                ]
                if tap.coeff.kind is CoeffKind.UNIT:
                    product = np.float32(1.0) * window
                else:
                    product = coeff * window
            acc = acc + product.astype(np.float32)
        # Fused extra terms join the chain after the base taps, in order.
        for term in getattr(pattern, "extra_terms", ()):
            data = node.memory.buffer(term.source)
            coeff = _term_coefficient_subgrid(term.coeff, node, rows, cols)
            acc = acc + (coeff * data).astype(np.float32)
    result[:] = acc


def machine_execute_fast(
    pattern: StencilPattern,
    machine: CM2,
    *,
    source_name: str,
    result_name: str,
    halo: int,
    guard: Optional[FaultGuard] = None,
) -> bool:
    """Compute every node's subgrid in one batched tap-accumulation loop.

    The machine-wide analogue of :func:`node_execute_fast`: one slice of
    the stacked padded source per tap, one chained multiply-add per tap,
    accumulated in statement order with float32 rounding after every
    multiply and every add.  Because float32 arithmetic is elementwise
    deterministic, the result is bit-identical to the per-node loop (and
    therefore to exact mode) -- only the interpreter overhead changes:
    O(taps) array operations total instead of O(taps) per node.

    Returns True when the batched path ran; False (having written
    nothing) when any involved buffer is not backed by intact machine
    storage, in which case the caller must run the per-node loop.
    """
    halo_name = halo_buffer_name(source_name)
    extra_terms = getattr(pattern, "extra_terms", ())
    names = {halo_name, result_name}
    for tap in pattern.taps:
        if tap.coeff.kind is CoeffKind.ARRAY:
            names.add(tap.coeff.name)
    for term in extra_terms:
        names.add(term.source)
        if term.coeff.kind is CoeffKind.ARRAY:
            names.add(term.coeff.name)
    stacks = {}
    for name in names:
        stack = machine.stacked(name)
        if stack is None:
            return False
        stacks[name] = stack

    padded = stacks[halo_name]
    result = stacks[result_name]
    rows, cols = result.shape[2:]
    # One accumulator and one product buffer for the whole machine; the
    # in-place ufunc calls perform the same float32 multiply and add as
    # the per-node temporaries, so the rounding chain is unchanged --
    # they just skip the intermediate allocations.
    acc = np.zeros(result.shape, dtype=np.float32)
    scratch = np.empty(result.shape, dtype=np.float32)
    # The FPU saturates silently; overflow to inf is a data property,
    # not an execution error.
    with np.errstate(over="ignore", invalid="ignore"):
        for tap in pattern.taps:
            coeff = _stacked_coefficient(tap.coeff, stacks)
            if tap.is_constant_term:
                np.multiply(np.float32(1.0), coeff, out=scratch)
            else:
                window = padded[
                    :,
                    :,
                    halo + tap.dy : halo + tap.dy + rows,
                    halo + tap.dx : halo + tap.dx + cols,
                ]
                if tap.coeff.kind is CoeffKind.UNIT:
                    np.multiply(np.float32(1.0), window, out=scratch)
                else:
                    np.multiply(coeff, window, out=scratch)
            np.add(acc, scratch, out=acc)
        # Fused extra terms join the chain after the base taps, in order.
        for term in extra_terms:
            coeff = _stacked_coefficient(term.coeff, stacks)
            np.multiply(coeff, stacks[term.source], out=scratch)
            np.add(acc, scratch, out=acc)
    result[...] = acc
    if guard is not None:
        guard.inject_poison(result)
        guard.verify_finite(result, f"fast executor result {result_name!r}")
    return True


def machine_execute_fast_stack(
    pattern: StencilPattern,
    *,
    padded: np.ndarray,
    coeff_stacks: Dict[str, np.ndarray],
    halo: int,
    out: np.ndarray,
    acc: np.ndarray,
    scratch: np.ndarray,
) -> None:
    """The fast tap-accumulation loop on raw stacks (batched runs).

    Exactly :func:`machine_execute_fast`'s rounding chain -- taps in
    statement order, float32 rounding after every multiply and every add
    -- but operating on explicit arrays instead of named machine
    buffers.  ``padded`` carries any leading batch axes ahead of the
    node grid (subgrid axes at ``-2``/``-1``); 4-d coefficient stacks
    broadcast across them, so one ufunc call per tap serves the whole
    batch and every element's float32 chain matches the per-grid run
    bit for bit.

    ``out``, ``acc``, and ``scratch`` share ``padded``'s leading axes
    with unpadded subgrid extents; ``acc`` is zeroed here.  Patterns
    with fused extra terms are not supported on this path (the batch
    entry point rejects them up front).
    """
    if getattr(pattern, "extra_terms", ()):
        raise ExecutionSetupError(
            "the stacked batch executor does not support fused extra terms"
        )
    rows, cols = out.shape[-2:]
    acc[...] = np.float32(0.0)
    # The FPU saturates silently; overflow to inf is a data property,
    # not an execution error.
    with np.errstate(over="ignore", invalid="ignore"):
        for tap in pattern.taps:
            coeff = _stacked_coefficient(tap.coeff, coeff_stacks)
            if tap.is_constant_term:
                np.multiply(np.float32(1.0), coeff, out=scratch)
            else:
                window = padded[
                    ...,
                    halo + tap.dy : halo + tap.dy + rows,
                    halo + tap.dx : halo + tap.dx + cols,
                ]
                if tap.coeff.kind is CoeffKind.UNIT:
                    np.multiply(np.float32(1.0), window, out=scratch)
                else:
                    np.multiply(coeff, window, out=scratch)
            np.add(acc, scratch, out=acc)
    out[...] = acc


def machine_execute_blocked(
    pattern: StencilPattern,
    *,
    ping: np.ndarray,
    pong: np.ndarray,
    deep_coeffs: Dict[str, np.ndarray],
    subgrid_shape,
    pad: int,
    steps: int,
    scratch: np.ndarray,
    check_fixed_point: bool = True,
    guard: Optional[FaultGuard] = None,
):
    """Run one temporal block: ``steps`` locally fused sub-iterations.

    ``ping`` holds the block input with a valid ``steps * pad``-deep
    halo (filled by :func:`~repro.runtime.halo.exchange_halo_deep`);
    ``pong`` is its ping-pong partner, and ``deep_coeffs`` the
    deep-padded coefficient stacks.  Sub-iteration ``t`` applies the
    stencil over the whole still-valid region -- the subgrid plus a
    ``(steps - 1 - t) * pad``-deep ghost ring -- accumulating taps in
    statement order with float32 rounding after every multiply and add,
    exactly :func:`machine_execute_fast` over an enlarged subgrid.  The
    ghost ring reproduces, bit for bit, what the neighbors compute in
    their own interiors (same data via the deep exchange, same
    coefficients via ``deep_coeffs``, same rounding chain), so consuming
    it instead of re-exchanging changes no result bits.  FILL boundary
    semantics are re-applied to the out-of-bounds bands after every
    sub-iteration, exactly the state a fresh exchange would restore.

    Returns ``(final, fixed)``: the buffer holding the last iterate
    (its subgrid at ``[deep : deep + rows, deep : deep + cols]``) and
    whether a machine-wide fixed point was detected after the first
    sub-iteration (in which case ``final`` already equals every later
    iterate and the caller may stop computing).

    Under ``guard`` (chaos runs), each sub-iteration's valid output
    region is parity-sealed after the FILL re-application and verified
    before the next sub-iteration reads it -- the read window of
    sub-iteration ``t + 1`` is exactly the sealed region of ``t`` -- and
    the injector may flip bits in the ping-pong stacks between
    sub-iterations.  The final region is parity- and finiteness-checked
    before the block returns, so corruption injected after the last
    seal cannot escape.
    """
    rows, cols = subgrid_shape
    deep = steps * pad
    dim_row, dim_col = pattern.plane_dims
    row_fills = (
        pattern.boundary.get(dim_row, BoundaryMode.CIRCULAR)
        is BoundaryMode.FILL
    )
    col_fills = (
        pattern.boundary.get(dim_col, BoundaryMode.CIRCULAR)
        is BoundaryMode.FILL
    )
    fill = np.float32(pattern.fill_value)

    src, dst = ping, pong
    sealed: Optional[int] = None
    sealed_view: Optional[np.ndarray] = None
    with np.errstate(over="ignore", invalid="ignore"):
        for t in range(steps):
            ghost = (steps - 1 - t) * pad
            out_rows = rows + 2 * ghost
            out_cols = cols + 2 * ghost
            base = deep - ghost
            if guard is not None and sealed is not None:
                # sealed_view (the previous sub-iteration's valid output
                # region) is exactly the window this sub-iteration reads.
                guard.verify_parity(
                    sealed_view,
                    sealed,
                    f"block sub-iteration {t} input",
                )
            # Accumulate straight into the destination region; the
            # rounding chain is the per-tap multiply and add of
            # machine_execute_fast, only the final buffer copy is gone.
            # Leading batch axes (if any) ride along: the subgrid axes
            # sit at -2/-1 and 4-d coefficient stacks broadcast across
            # the batch, so the per-element float32 chain is unchanged.
            acc = dst[..., base : base + out_rows, base : base + out_cols]
            prod = scratch[..., :out_rows, :out_cols]
            acc[...] = np.float32(0.0)
            for tap in pattern.taps:
                if tap.coeff.kind is CoeffKind.ARRAY:
                    coeff = deep_coeffs[tap.coeff.name][
                        ..., base : base + out_rows, base : base + out_cols
                    ]
                elif tap.coeff.kind is CoeffKind.SCALAR:
                    coeff = np.float32(tap.coeff.value)
                else:
                    coeff = np.float32(1.0)
                if tap.is_constant_term:
                    np.multiply(np.float32(1.0), coeff, out=prod)
                else:
                    window = src[
                        ...,
                        base + tap.dy : base + tap.dy + out_rows,
                        base + tap.dx : base + tap.dx + out_cols,
                    ]
                    if tap.coeff.kind is CoeffKind.UNIT:
                        np.multiply(np.float32(1.0), window, out=prod)
                    else:
                        np.multiply(coeff, window, out=prod)
                np.add(acc, prod, out=acc)
            if row_fills:
                dst[..., 0, :, :deep, :] = fill
                dst[..., -1, :, deep + rows :, :] = fill
            if col_fills:
                dst[..., :, 0, :, :deep] = fill
                dst[..., :, -1, :, deep + cols :] = fill
            if guard is not None:
                sealed_view = dst[
                    ..., base : base + out_rows, base : base + out_cols
                ]
                sealed = parity_word(sealed_view)
            if t == 0 and steps > 1 and check_fixed_point:
                # The subgrids alone tile the global array, so
                # machine-wide interior equality means a true fixed
                # point: every later iterate reproduces this one.
                if np.array_equal(
                    dst[..., deep : deep + rows, deep : deep + cols],
                    src[..., deep : deep + rows, deep : deep + cols],
                ):
                    if guard is not None:
                        guard.verify_finite(
                            dst[..., deep : deep + rows, deep : deep + cols],
                            "temporal block fixed-point output",
                        )
                    return dst, True
            if guard is not None:
                guard.inject_scratch([("ping stack", ping), ("pong stack", pong)])
            src, dst = dst, src
    if guard is not None:
        # The last seal covers exactly the final subgrid region; verify
        # it so a flip injected after the last sub-iteration (or a NaN
        # produced inside the block) cannot escape the block.
        guard.verify_parity(sealed_view, sealed, "temporal block output")
        guard.verify_finite(
            src[..., deep : deep + rows, deep : deep + cols],
            "temporal block output",
        )
    return src, False


def _stacked_coefficient(coeff, stacks: Dict[str, np.ndarray]):
    """The machine-wide coefficient operand: a stacked array or a scalar.

    Scalar and unit coefficients multiply as float32 *scalars*; numpy's
    scalar-times-array float32 arithmetic rounds identically to the
    per-node full-page multiply, so the chain stays bit-exact.
    """
    if coeff.kind is CoeffKind.ARRAY:
        return stacks[coeff.name]
    if coeff.kind is CoeffKind.SCALAR:
        return np.float32(coeff.value)
    return np.float32(1.0)


def _coefficient_subgrid(tap, node: Node, rows: int, cols: int) -> np.ndarray:
    return _term_coefficient_subgrid(tap.coeff, node, rows, cols)


def _term_coefficient_subgrid(
    coeff, node: Node, rows: int, cols: int
) -> np.ndarray:
    if coeff.kind is CoeffKind.ARRAY:
        return node.memory.buffer(coeff.name)
    if coeff.kind is CoeffKind.SCALAR:
        return np.full((rows, cols), np.float32(coeff.value), dtype=np.float32)
    return np.ones((rows, cols), dtype=np.float32)
