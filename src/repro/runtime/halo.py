"""Temporary-storage allocation and the four-neighbor halo exchange.

Interprocessor communication for an entire stencil computation happens
up front, all at once (paper section 5.1):

1. temporary storage is allocated around each subgrid, padded on *all
   four sides* by the largest of the four border widths -- the
   four-neighbor exchange primitive makes the extra data free, and "in
   practice most stencils have fourfold symmetry anyway";
2. data is exchanged with all four grid neighbors simultaneously (the
   new node-grid communication primitive);
3. corner data is exchanged for patterns that reach diagonally; the test
   for skipping this step "is very easy and quick and does save a
   noticeable amount of time for smaller arrays".

Boundary treatment: CSHIFT dimensions wrap (the node grid is a torus);
EOSHIFT dimensions fill out-of-bounds halo regions with the statement's
boundary value at the global array edges (interior node boundaries still
receive neighbor data).

Axis convention: every stack-level helper in this module indexes the
node-grid axes at ``-4``/``-3`` and the subgrid axes at ``-2``/``-1``,
so the same data movement serves the classic 4-d
``(grid_rows, grid_cols, rows, cols)`` stacks and the batched
``(batch, ..., grid_rows, grid_cols, rows, cols)`` stacks -- one
machine pass exchanges the halos of every leading-axis copy at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..machine.machine import CM2
from ..machine.memory import parity_word
from ..machine.params import MachineParams
from ..stencil.offsets import BoundaryMode
from ..stencil.pattern import StencilPattern
from .cm_array import CMArray
from .faults import FaultGuard, RetryExhaustedError


def halo_buffer_name(array_name: str) -> str:
    """Name of the temporary padded buffer for a source array."""
    return f"{array_name}__halo__"


@dataclass(frozen=True)
class CommStats:
    """Cost accounting for one halo exchange (per node, per call)."""

    pad: int
    cycles: int
    edge_elements: int
    corner_elements: int
    corner_step_skipped: bool
    temp_words: int

    @property
    def total_elements(self) -> int:
        return self.edge_elements + self.corner_elements


def exchange_cost(
    pattern: StencilPattern,
    subgrid_shape: Tuple[int, int],
    params: MachineParams,
) -> CommStats:
    """The communication cost model, without moving any data.

    The four-neighbor exchange moves ``pad`` rows/columns along every
    edge simultaneously, so its time is proportional to the *longer*
    subgrid side; the corner step (when needed) moves four ``pad x pad``
    blocks.
    """
    pad = pattern.border_widths().max_width
    rows, cols = subgrid_shape
    skipped = not pattern.needs_corner_exchange()
    if pad == 0:
        return CommStats(
            pad=0,
            cycles=0,
            edge_elements=0,
            corner_elements=0,
            corner_step_skipped=True,
            temp_words=rows * cols,
        )
    cycles = params.comm_startup_cycles + int(
        params.comm_cycles_per_element * pad * max(rows, cols)
    )
    corner_elements = 0
    if not skipped:
        cycles += params.corner_exchange_startup_cycles + int(
            params.comm_cycles_per_element * pad * pad
        )
        corner_elements = 4 * pad * pad
    return CommStats(
        pad=pad,
        cycles=cycles,
        edge_elements=2 * pad * (rows + cols),
        corner_elements=corner_elements,
        corner_step_skipped=skipped,
        temp_words=(rows + 2 * pad) * (cols + 2 * pad),
    )


def deep_exchange_cost(
    pattern: StencilPattern,
    subgrid_shape: Tuple[int, int],
    params: MachineParams,
    depth: int,
) -> CommStats:
    """The cost of one deep-halo exchange for temporal block depth
    ``depth``: a ``depth * pad``-wide halo moved in one four-neighbor
    exchange, amortized over ``depth`` locally fused iterations.

    The corner step cannot be skipped for ``depth >= 2`` even when the
    pattern has no diagonal reach: iterating the stencil inside the halo
    composes row and column shifts, so the fused footprint always grows
    diagonally (a cross iterated twice is a diamond).
    """
    if depth < 1:
        raise ValueError("block depth must be positive")
    pad = pattern.border_widths().max_width
    if pad == 0 or depth == 1:
        return exchange_cost(pattern, subgrid_shape, params)
    return deep_width_cost(subgrid_shape, params, depth * pad)


def deep_width_cost(
    subgrid_shape: Tuple[int, int],
    params: MachineParams,
    deep: int,
) -> CommStats:
    """The cost of one composed-corner exchange at an explicit halo
    width.  :func:`deep_exchange_cost` prices ``depth * pad``; batched
    blocked runs share one exchange at the *largest* of their filters'
    deep widths, which need not be a multiple of any single pad."""
    rows, cols = subgrid_shape
    if deep == 0:
        return CommStats(
            pad=0,
            cycles=0,
            edge_elements=0,
            corner_elements=0,
            corner_step_skipped=True,
            temp_words=rows * cols,
        )
    cycles = (
        params.comm_startup_cycles
        + int(params.comm_cycles_per_element * deep * max(rows, cols))
        + params.corner_exchange_startup_cycles
        + int(params.comm_cycles_per_element * deep * deep)
    )
    return CommStats(
        pad=deep,
        cycles=cycles,
        edge_elements=2 * deep * (rows + cols),
        corner_elements=4 * deep * deep,
        corner_step_skipped=False,
        temp_words=(rows + 2 * deep) * (cols + 2 * deep),
    )


def exchange_halo_deep(
    source_stack: np.ndarray,
    padded: np.ndarray,
    pattern: StencilPattern,
    subgrid_shape: Tuple[int, int],
    params: MachineParams,
    depth: int,
    *,
    guard: Optional[FaultGuard] = None,
) -> CommStats:
    """Fill a ``depth * pad``-deep padded stack by neighbor exchange.

    The batched-only exchange behind temporal blocking: ``source_stack``
    is a ``(grid_rows, grid_cols, rows, cols)`` stack and ``padded`` a
    preallocated ``(grid_rows, grid_cols, rows + 2*deep, cols +
    2*deep)`` destination (typically one of the ping-pong pair).  The
    exchange runs in two passes -- north/south bands first, then
    east/west bands over the *full padded height*, reading the
    just-filled bands -- so the four corner blocks arrive composed, with
    no separate diagonal step.  FILL dimensions then overwrite the
    entire out-of-bounds band of the global-edge nodes, exactly the
    state ``depth`` sequential exchanges would maintain.

    Under ``guard`` (chaos runs), the injector may corrupt or drop
    received bands, every message is checksummed against the senders'
    data, and failed exchanges are retried with capped backoff -- every
    attempt charged to the guard's tallies.

    Returns the deep-exchange cost statistics.
    """
    rows, cols = subgrid_shape
    pad = pattern.border_widths().max_width
    deep = depth * pad
    if deep > min(rows, cols):
        raise ValueError(
            f"deep halo width {deep} exceeds the subgrid extent "
            f"{subgrid_shape}; the exchange primitive reaches only "
            "immediate neighbors"
        )
    stats = deep_exchange_cost(pattern, subgrid_shape, params, depth)
    if guard is None:
        _fill_padded_deep(source_stack, padded, pattern, subgrid_shape, deep)
        return stats

    site = f"deep exchange (depth {depth})"
    # Hard-fault window (see _exchange_halo_guarded).  The machine is
    # known only when the guard is armed for hard faults.
    machine = guard.machine
    guard.begin_exchange(site)
    attempt = 0
    while True:
        attempt += 1
        _fill_padded_deep(source_stack, padded, pattern, subgrid_shape, deep)
        guard.charge_exchange(stats, retry=attempt > 1)
        if machine is not None and _corrupt_dead_links(
            machine, padded, subgrid_shape, deep, full_height_ew=True
        ):
            _apply_fill_deep(padded, pattern, subgrid_shape, deep)
        guard.inject_halo(_deep_regions(padded, deep, subgrid_shape))
        bad = _verify_deep(source_stack, padded, pattern, subgrid_shape, deep)
        if not bad:
            if guard.monitor is not None:
                guard.monitor.charge_detours(
                    deep, subgrid_shape, params, full_height_ew=True
                )
            return stats
        guard.note_detected("halo_checksum", site, ", ".join(bad))
        if guard.monitor is not None:
            expected = np.zeros_like(padded)
            _fill_padded_deep(
                source_stack, expected, pattern, subgrid_shape, deep
            )
            routes = _localize_bad_routes(
                machine, padded, expected, subgrid_shape, deep,
                full_height_ew=True,
            )
            guard.monitor.observe_route_failures(routes, site)
        if attempt > guard.policy.max_retries:
            raise RetryExhaustedError(
                f"deep halo exchange failed checksum verification on "
                f"{attempt} attempts (bad messages: {', '.join(bad)})"
            )
        guard.charge_backoff(attempt)


def _fill_padded_deep(
    source_stack: np.ndarray,
    padded: np.ndarray,
    pattern: StencilPattern,
    subgrid_shape: Tuple[int, int],
    deep: int,
) -> None:
    """The deep exchange's pure data movement (no costing, no guard).

    Leading-axes aware: any axes ahead of the node-grid pair are
    carried through untouched, so a batched stack's every copy is
    exchanged in the same pass.
    """
    rows, cols = subgrid_shape
    padded[..., deep : deep + rows, deep : deep + cols] = source_stack
    if deep == 0:
        return
    # Pass 1: north/south bands (interior width).
    padded[..., :deep, deep : deep + cols] = np.roll(
        source_stack[..., rows - deep :, :], 1, axis=-4
    )
    padded[..., deep + rows :, deep : deep + cols] = np.roll(
        source_stack[..., :deep, :], -1, axis=-4
    )
    # Pass 2: east/west bands over the full padded height.  The rolled
    # columns include the neighbors' pass-1 bands, so the corner blocks
    # arrive as the composed row+column shift -- no separate step.
    padded[..., :deep] = np.roll(
        padded[..., cols : cols + deep], 1, axis=-3
    )
    padded[..., deep + cols :] = np.roll(
        padded[..., deep : 2 * deep], -1, axis=-3
    )
    _apply_fill_deep(padded, pattern, subgrid_shape, deep)


def _apply_fill_deep(
    padded: np.ndarray,
    pattern: StencilPattern,
    subgrid_shape: Tuple[int, int],
    deep: int,
) -> None:
    """(Re-)apply the FILL boundary overwrites to a deep buffer (see
    :func:`_apply_fill_shallow` for why this is separable)."""
    rows, cols = subgrid_shape
    dim_row, dim_col = pattern.plane_dims
    fill = np.float32(pattern.fill_value)
    if pattern.boundary.get(dim_row, BoundaryMode.CIRCULAR) is BoundaryMode.FILL:
        padded[..., 0, :, :deep, :] = fill
        padded[..., -1, :, deep + rows :, :] = fill
    if pattern.boundary.get(dim_col, BoundaryMode.CIRCULAR) is BoundaryMode.FILL:
        padded[..., :, 0, :, :deep] = fill
        padded[..., :, -1, :, deep + cols :] = fill


def _deep_regions(
    padded: np.ndarray, deep: int, subgrid_shape: Tuple[int, int]
) -> List[Tuple[str, np.ndarray]]:
    """The deep exchange's received message bands, as (label, view)."""
    rows, cols = subgrid_shape
    if deep == 0:
        return []
    return [
        ("north band", padded[..., :deep, deep : deep + cols]),
        ("south band", padded[..., deep + rows :, deep : deep + cols]),
        ("west band", padded[..., :deep]),
        ("east band", padded[..., deep + cols :]),
    ]


def _verify_deep(
    source_stack: np.ndarray,
    padded: np.ndarray,
    pattern: StencilPattern,
    subgrid_shape: Tuple[int, int],
    deep: int,
) -> List[str]:
    """Checksum each received band against the senders' data.

    Recomputes the exchange into a scratch destination (the model of
    the sender-side checksum) and compares the parity word of every
    message band.  Returns the labels of mismatched bands.
    """
    expected = np.zeros_like(padded)
    _fill_padded_deep(source_stack, expected, pattern, subgrid_shape, deep)
    got = _deep_regions(padded, deep, subgrid_shape)
    want = _deep_regions(expected, deep, subgrid_shape)
    return [
        label
        for (label, region), (_, reference) in zip(got, want)
        if parity_word(region) != parity_word(reference)
    ]


def exchange_halo_batch(
    stack: np.ndarray,
    padded: np.ndarray,
    pattern: StencilPattern,
    subgrid_shape: Tuple[int, int],
    params: MachineParams,
    *,
    copies: int = 1,
    guard: Optional[FaultGuard] = None,
    site: str = "batch exchange",
) -> CommStats:
    """One machine pass filling the shallow halos of ``copies`` stacked
    grids at once.

    ``stack`` is a ``(..., grid_rows, grid_cols, rows, cols)`` stack
    whose leading axes enumerate independent grids (batch entries,
    filter states); ``padded`` is the preallocated destination with the
    same leading axes and ``2 * pad`` larger subgrid extents.  The data
    of every copy moves in the same four slice assignments -- this is
    the batched multi-convolution's amortization primitive -- but each
    copy's halo is a real message, so the caller charges ``copies``
    exchanges at the returned per-copy :class:`CommStats`.

    Under ``guard`` the exchange is checksummed and retried exactly
    like :func:`exchange_halo`'s batched path, with every attempt
    charged ``copies`` times.

    Returns the per-copy cost statistics.
    """
    rows, cols = subgrid_shape
    pad = pattern.border_widths().max_width
    if pad > min(rows, cols):
        raise ValueError(
            f"halo width {pad} exceeds the subgrid extent {subgrid_shape}; "
            "the exchange primitive reaches only immediate neighbors"
        )
    stats = exchange_cost(pattern, subgrid_shape, params)
    if guard is None:
        _fill_padded_shallow(stack, padded, pattern, stats, subgrid_shape)
        return stats

    machine = guard.machine
    guard.begin_exchange(site)
    attempt = 0
    while True:
        attempt += 1
        _fill_padded_shallow(stack, padded, pattern, stats, subgrid_shape)
        for _ in range(max(1, copies)):
            guard.charge_exchange(stats, retry=attempt > 1)
        if machine is not None and _corrupt_dead_links(
            machine, padded, subgrid_shape, stats.pad, full_height_ew=False
        ):
            _apply_fill_shallow(padded, pattern, stats, subgrid_shape)
        guard.inject_halo(_shallow_regions(padded, stats, subgrid_shape))
        bad = _verify_shallow_batched(
            stack, padded, pattern, stats, subgrid_shape
        )
        if not bad:
            if guard.monitor is not None:
                for _ in range(max(1, copies)):
                    guard.monitor.charge_detours(
                        stats.pad, subgrid_shape, params
                    )
            return stats
        guard.note_detected("halo_checksum", site, ", ".join(bad))
        if guard.monitor is not None:
            expected = np.zeros_like(padded)
            _fill_padded_shallow(
                stack, expected, pattern, stats, subgrid_shape
            )
            routes = _localize_bad_routes(
                machine, padded, expected, subgrid_shape, stats.pad,
                full_height_ew=False,
            )
            guard.monitor.observe_route_failures(routes, site)
        if attempt > guard.policy.max_retries:
            raise RetryExhaustedError(
                f"{site} failed checksum verification on {attempt} "
                f"attempts (bad messages: {', '.join(bad)})"
            )
        guard.charge_backoff(attempt)


def exchange_halo_deep_width(
    stack: np.ndarray,
    padded: np.ndarray,
    pattern: StencilPattern,
    subgrid_shape: Tuple[int, int],
    params: MachineParams,
    deep: int,
) -> CommStats:
    """A composed-corner deep exchange at an explicit halo width.

    The batched blocked path exchanges the whole batch's source once at
    the largest deep width any filter in the group needs; each filter
    then copies its centered window out locally (no further messages).
    Leading axes carry through like :func:`exchange_halo_batch`.
    """
    rows, cols = subgrid_shape
    if deep > min(rows, cols):
        raise ValueError(
            f"deep halo width {deep} exceeds the subgrid extent "
            f"{subgrid_shape}; the exchange primitive reaches only "
            "immediate neighbors"
        )
    stats = deep_width_cost(subgrid_shape, params, deep)
    _fill_padded_deep(stack, padded, pattern, subgrid_shape, deep)
    return stats


def exchange_halo_group(
    stack: np.ndarray,
    padded: np.ndarray,
    pattern: StencilPattern,
    subgrid_shape: Tuple[int, int],
    params: MachineParams,
    deep: int,
    *,
    copies: int = 1,
    guard: Optional[FaultGuard] = None,
    site: str = "group exchange",
) -> CommStats:
    """One machine pass filling a width-``deep`` composed-corner halo
    for ``copies`` stacked grids at once.

    The mixed-footprint variant of :func:`exchange_halo_batch`: when the
    filters sharing an exchange have *different* pads, the group
    exchanges once at the widest pad and every filter reads its own
    centered window of the result (a centered sub-window of a wider
    exchange is bit-identical to that filter's own exchange).  Corners
    arrive composed -- the wider halo must serve filters with diagonal
    reach -- so the per-copy cost is :func:`deep_width_cost`.

    ``pattern`` supplies only the boundary modes and fill value, which
    grouping guarantees are uniform across the group's filters.

    Under ``guard`` the exchange is checksummed and retried exactly like
    :func:`exchange_halo_deep`, with every attempt charged ``copies``
    times.  Returns the per-copy cost statistics.
    """
    rows, cols = subgrid_shape
    if deep > min(rows, cols):
        raise ValueError(
            f"group halo width {deep} exceeds the subgrid extent "
            f"{subgrid_shape}; the exchange primitive reaches only "
            "immediate neighbors"
        )
    stats = deep_width_cost(subgrid_shape, params, deep)
    if guard is None:
        _fill_padded_deep(stack, padded, pattern, subgrid_shape, deep)
        return stats

    machine = guard.machine
    guard.begin_exchange(site)
    attempt = 0
    while True:
        attempt += 1
        _fill_padded_deep(stack, padded, pattern, subgrid_shape, deep)
        for _ in range(max(1, copies)):
            guard.charge_exchange(stats, retry=attempt > 1)
        if machine is not None and _corrupt_dead_links(
            machine, padded, subgrid_shape, deep, full_height_ew=True
        ):
            _apply_fill_deep(padded, pattern, subgrid_shape, deep)
        guard.inject_halo(_deep_regions(padded, deep, subgrid_shape))
        bad = _verify_deep(stack, padded, pattern, subgrid_shape, deep)
        if not bad:
            if guard.monitor is not None:
                for _ in range(max(1, copies)):
                    guard.monitor.charge_detours(
                        deep, subgrid_shape, params, full_height_ew=True
                    )
            return stats
        guard.note_detected("halo_checksum", site, ", ".join(bad))
        if guard.monitor is not None:
            expected = np.zeros_like(padded)
            _fill_padded_deep(stack, expected, pattern, subgrid_shape, deep)
            routes = _localize_bad_routes(
                machine, padded, expected, subgrid_shape, deep,
                full_height_ew=True,
            )
            guard.monitor.observe_route_failures(routes, site)
        if attempt > guard.policy.max_retries:
            raise RetryExhaustedError(
                f"{site} failed checksum verification on {attempt} "
                f"attempts (bad messages: {', '.join(bad)})"
            )
        guard.charge_backoff(attempt)


def legacy_exchange_cost(
    pattern: StencilPattern,
    subgrid_shape: Tuple[int, int],
    params: MachineParams,
) -> CommStats:
    """The *previous* CM-2 grid primitive's cost (paper section 4.1).

    "Previous CM-2 grid primitives were designed to organize the
    bit-serial processors into a grid and to allow every processor in
    parallel to pass a single datum to a single neighbor, all in the
    same direction (West, say)."  Filling a width-``pad`` halo that way
    takes one whole-direction transfer per row/column of halo per
    direction -- ``4 * pad`` sequential primitive calls, each moving one
    element per processor and paying its own startup -- where the new
    node-grid primitive exchanges everything with all four neighbors at
    once.
    """
    pad = pattern.border_widths().max_width
    rows, cols = subgrid_shape
    skipped = not pattern.needs_corner_exchange()
    if pad == 0:
        return exchange_cost(pattern, subgrid_shape, params)
    cycles = 0
    for extent, directions in ((cols, 2), (rows, 2)):
        # One call per halo row/column per direction; each call shifts
        # one element across every processor boundary on the path, so
        # its transfer time covers the full edge length.
        cycles += directions * pad * (
            params.comm_startup_cycles
            + int(params.comm_cycles_per_element * extent)
        )
    corner_elements = 0
    if not skipped:
        # Corners arrive via composed row+column shifts: pad extra calls
        # per diagonal pair.
        cycles += 2 * pad * (
            params.corner_exchange_startup_cycles
            + int(params.comm_cycles_per_element * pad)
        )
        corner_elements = 4 * pad * pad
    return CommStats(
        pad=pad,
        cycles=cycles,
        edge_elements=2 * pad * (rows + cols),
        corner_elements=corner_elements,
        corner_step_skipped=skipped,
        temp_words=(rows + 2 * pad) * (cols + 2 * pad),
    )


def exchange_halo(
    source: CMArray,
    pattern: StencilPattern,
    params: MachineParams,
    *,
    into: Optional[str] = None,
    batched: bool = True,
    guard: Optional[FaultGuard] = None,
) -> CommStats:
    """Build every node's padded source buffer by neighbor exchange.

    Allocates (or refreshes) the ``<name>__halo__`` buffer on each node
    and fills its interior from the node's own subgrid and its halo from
    the four edge neighbors plus, when the pattern reaches diagonally,
    the four corner neighbors.

    Args:
        source: the distributed array whose data is exchanged.
        pattern: determines the pad width, boundary modes, and whether
            the corner step runs.
        params: the cost model's machine parameters.
        into: name of the padded destination buffer; defaults to
            ``halo_buffer_name(source.name)``.  Iterated runs pass the
            previous iteration's *result* array as ``source`` with
            ``into`` still naming the original source's halo buffer, so
            the compiled plans keep reading the same buffer name.
        batched: perform the exchange as whole-machine slice assignments
            on the stacked storage (one operation per direction, exactly
            like the four-neighbor primitive) instead of a per-node
            Python loop.  Falls back to the per-node loop automatically
            when the source is not stack-backed.
        guard: resilience guard for chaos runs.  When given, the
            injector may corrupt or drop received messages, every
            message is checksummed against the sender's data, and
            failed exchanges are retried with capped backoff -- every
            attempt charged to the guard's tallies.

    Returns the per-node cost statistics.
    """
    rows, cols = source.subgrid_shape
    pad = pattern.border_widths().max_width
    if pad > min(rows, cols):
        raise ValueError(
            f"halo width {pad} exceeds the subgrid extent {source.subgrid_shape}; "
            "the exchange primitive reaches only immediate neighbors"
        )
    stats = exchange_cost(pattern, source.subgrid_shape, params)
    name = into if into is not None else halo_buffer_name(source.name)
    if guard is not None:
        return _exchange_halo_guarded(
            source, pattern, stats, name, batched, guard, params
        )
    if batched and _exchange_halo_batched(source, pattern, stats, name):
        return stats
    _exchange_halo_per_node(source, pattern, stats, name)
    return stats


def _exchange_halo_guarded(
    source: CMArray,
    pattern: StencilPattern,
    stats: CommStats,
    name: str,
    batched: bool,
    guard: FaultGuard,
    params: MachineParams,
) -> CommStats:
    """The checksummed, retried shallow exchange (chaos runs only)."""
    machine = source.machine
    subgrid_shape = source.subgrid_shape
    site = f"exchange into {name!r}"
    # Hard-fault window: the injector may break hardware now, and a
    # dead participant misses the deadline here -- before any data
    # moves and before any exchange is charged.
    guard.begin_exchange(site)
    attempt = 0
    while True:
        attempt += 1
        used_batched = batched and _exchange_halo_batched(
            source, pattern, stats, name
        )
        if not used_batched:
            _exchange_halo_per_node(source, pattern, stats, name)
        guard.charge_exchange(stats, retry=attempt > 1)
        if used_batched:
            padded = machine.stacked(name)
            if _corrupt_dead_links(
                machine, padded, subgrid_shape, stats.pad,
                full_height_ew=False,
            ):
                _apply_fill_shallow(padded, pattern, stats, subgrid_shape)
            guard.inject_halo(_shallow_regions(padded, stats, subgrid_shape))
            bad = _verify_shallow_batched(
                machine.stacked(source.name),
                padded,
                pattern,
                stats,
                subgrid_shape,
            )
        else:
            _corrupt_dead_links_per_node(
                machine, name, pattern, stats, subgrid_shape
            )
            guard.inject_halo(
                _per_node_regions(machine, stats, subgrid_shape, name)
            )
            bad_coords = _verify_shallow_per_node(
                machine, source.name, pattern, stats, subgrid_shape, name
            )
            bad = [f"node({r},{c})" for (r, c) in bad_coords]
        if not bad:
            if guard.monitor is not None:
                guard.monitor.charge_detours(
                    stats.pad, subgrid_shape, params
                )
            return stats
        guard.note_detected("halo_checksum", site, ", ".join(bad))
        # Route diagnosis: attribute the failures to physical links so
        # a dead link is confirmed (and routed around) after enough
        # failures on the same route.
        if guard.monitor is not None:
            if used_batched:
                expected = np.zeros_like(padded)
                _fill_padded_shallow(
                    machine.stacked(source.name),
                    expected,
                    pattern,
                    stats,
                    subgrid_shape,
                )
                routes = _localize_bad_routes(
                    machine, padded, expected, subgrid_shape, stats.pad,
                    full_height_ew=False,
                )
                guard.monitor.observe_route_failures(routes, site)
            else:
                for coord in bad_coords:
                    guard.monitor.probe_node_links(coord, site)
        if attempt > guard.policy.max_retries:
            raise RetryExhaustedError(
                f"halo exchange into {name!r} failed checksum verification "
                f"on {attempt} attempts (bad messages: {', '.join(bad)})"
            )
        guard.charge_backoff(attempt)


def _shallow_regions(
    padded: np.ndarray, stats: CommStats, subgrid_shape: Tuple[int, int]
) -> List[Tuple[str, np.ndarray]]:
    """The batched exchange's received messages, as (label, view).

    Only actual messages are listed: the interior is the node's own
    data and scrubbed corners are never read, so neither can carry a
    transmission fault.
    """
    rows, cols = subgrid_shape
    pad = stats.pad
    if pad == 0:
        return []
    regions = [
        ("north edge", padded[..., :pad, pad : pad + cols]),
        ("south edge", padded[..., pad + rows :, pad : pad + cols]),
        ("west edge", padded[..., pad : pad + rows, :pad]),
        ("east edge", padded[..., pad : pad + rows, pad + cols :]),
    ]
    if not stats.corner_step_skipped:
        regions += [
            ("NW corner", padded[..., :pad, :pad]),
            ("NE corner", padded[..., :pad, pad + cols :]),
            ("SW corner", padded[..., pad + rows :, :pad]),
            ("SE corner", padded[..., pad + rows :, pad + cols :]),
        ]
    return regions


def _verify_shallow_batched(
    stack: np.ndarray,
    padded: np.ndarray,
    pattern: StencilPattern,
    stats: CommStats,
    subgrid_shape: Tuple[int, int],
) -> List[str]:
    """Checksum each received message against the senders' data."""
    expected = np.zeros_like(padded)
    _fill_padded_shallow(stack, expected, pattern, stats, subgrid_shape)
    got = _shallow_regions(padded, stats, subgrid_shape)
    want = _shallow_regions(expected, stats, subgrid_shape)
    return [
        label
        for (label, region), (_, reference) in zip(got, want)
        if parity_word(region) != parity_word(reference)
    ]


def _per_node_regions(
    machine: CM2,
    stats: CommStats,
    subgrid_shape: Tuple[int, int],
    name: str,
) -> List[Tuple[str, np.ndarray]]:
    """Every node's received messages on the per-node fallback path."""
    rows, cols = subgrid_shape
    pad = stats.pad
    if pad == 0:
        return []
    regions: List[Tuple[str, np.ndarray]] = []
    for node in machine.nodes():
        padded = node.memory.buffer(name)
        at = f"({node.coord.row},{node.coord.col})"
        regions += [
            (f"north edge@{at}", padded[:pad, pad : pad + cols]),
            (f"south edge@{at}", padded[pad + rows :, pad : pad + cols]),
            (f"west edge@{at}", padded[pad : pad + rows, :pad]),
            (f"east edge@{at}", padded[pad : pad + rows, pad + cols :]),
        ]
        if not stats.corner_step_skipped:
            regions += [
                (f"NW corner@{at}", padded[:pad, :pad]),
                (f"NE corner@{at}", padded[:pad, pad + cols :]),
                (f"SW corner@{at}", padded[pad + rows :, :pad]),
                (f"SE corner@{at}", padded[pad + rows :, pad + cols :]),
            ]
    return regions


def _verify_shallow_per_node(
    machine: CM2,
    source_name: str,
    pattern: StencilPattern,
    stats: CommStats,
    subgrid_shape: Tuple[int, int],
    name: str,
) -> List[Tuple[int, int]]:
    """Checksum every node's whole padded buffer against a recompute.

    Returns the grid coordinates of nodes whose buffers mismatch (the
    caller formats labels and, under a monitor, probes their links).
    """
    rows, cols = subgrid_shape
    pad = stats.pad
    bad: List[Tuple[int, int]] = []
    expected = np.zeros((rows + 2 * pad, cols + 2 * pad), dtype=np.float32)
    for node in machine.nodes():
        expected[...] = 0.0
        _fill_node_padded(
            machine, node, source_name, pattern, stats, subgrid_shape, expected
        )
        if parity_word(node.memory.buffer(name)) != parity_word(expected):
            bad.append((node.coord.row, node.coord.col))
    return bad


def _dead_link_pairs(
    machine: CM2,
) -> List[Tuple[str, Tuple[int, int], Tuple[int, int]]]:
    """Logical coordinate pairs of every dead, un-rerouted link.

    Each entry is ``(orientation, first, second)`` with ``first`` the
    North (for ``"v"``) or West (for ``"h"``) endpoint.  On a 2-wide
    axis the +1 and -1 neighbors share one hypercube wire, so both
    directed pairs are emitted.  Links with a retired endpoint resolve
    to no logical coordinate and are skipped (the spare brought fresh
    wires)."""
    health = machine.health
    pairs: List[Tuple[str, Tuple[int, int], Tuple[int, int]]] = []
    if not health.dead_links:
        return pairs
    grid_rows, grid_cols = machine.shape
    for key, link in health.dead_links.items():
        if key in health.rerouted_links:
            continue
        end_a, end_b = tuple(key)
        la = machine.coord_map.logical(end_a)
        lb = machine.coord_map.logical(end_b)
        if la is None or lb is None:
            continue
        if link.orientation == "v":
            if la[1] != lb[1]:
                continue
            if (la[0] + 1) % grid_rows == lb[0]:
                pairs.append(("v", la, lb))
            if (lb[0] + 1) % grid_rows == la[0]:
                pairs.append(("v", lb, la))
        else:
            if la[0] != lb[0]:
                continue
            if (la[1] + 1) % grid_cols == lb[1]:
                pairs.append(("h", la, lb))
            if (lb[1] + 1) % grid_cols == la[1]:
                pairs.append(("h", lb, la))
    return pairs


def _corrupt_dead_links(
    machine: CM2,
    padded: np.ndarray,
    subgrid_shape: Tuple[int, int],
    depth: int,
    *,
    full_height_ew: bool,
) -> bool:
    """Corrupt every band that crossed a dead, un-rerouted link.

    Models the hardware truth: a severed wire garbles everything it
    carries, every time, until the runtime routes around it.  Corner
    blocks travel the diagonal hypercube channels and are unaffected.
    The caller re-applies the FILL overwrites afterwards (a FILL band
    carries no message).  Returns True when anything was corrupted.
    """
    pairs = _dead_link_pairs(machine)
    if not pairs or depth == 0:
        return False
    rows, cols = subgrid_shape
    d = depth
    nan = np.float32(np.nan)
    for orientation, first, second in pairs:
        if orientation == "v":
            north, south = first, second
            padded[..., south[0], south[1], :d, d : d + cols] = nan
            padded[..., north[0], north[1], d + rows :, d : d + cols] = nan
        else:
            west, east = first, second
            if full_height_ew:
                padded[..., east[0], east[1], :, :d] = nan
                padded[..., west[0], west[1], :, d + cols :] = nan
            else:
                padded[..., east[0], east[1], d : d + rows, :d] = nan
                padded[..., west[0], west[1], d : d + rows, d + cols :] = nan
    return True


def _corrupt_dead_links_per_node(
    machine: CM2,
    name: str,
    pattern: StencilPattern,
    stats: CommStats,
    subgrid_shape: Tuple[int, int],
) -> bool:
    """Per-node variant of :func:`_corrupt_dead_links`: skips FILL
    bands directly instead of re-applying the overwrites."""
    pairs = _dead_link_pairs(machine)
    pad = stats.pad
    if not pairs or pad == 0:
        return False
    rows, cols = subgrid_shape
    grid_rows, grid_cols = machine.shape
    dim_row, dim_col = pattern.plane_dims
    row_fills = (
        pattern.boundary.get(dim_row, BoundaryMode.CIRCULAR)
        is BoundaryMode.FILL
    )
    col_fills = (
        pattern.boundary.get(dim_col, BoundaryMode.CIRCULAR)
        is BoundaryMode.FILL
    )
    nan = np.float32(np.nan)
    for orientation, first, second in pairs:
        if orientation == "v":
            north, south = first, second
            if not (south[0] == 0 and row_fills):
                buffer = machine.node(*south).memory.buffer(name)
                buffer[:pad, pad : pad + cols] = nan
            if not (north[0] == grid_rows - 1 and row_fills):
                buffer = machine.node(*north).memory.buffer(name)
                buffer[pad + rows :, pad : pad + cols] = nan
        else:
            west, east = first, second
            if not (east[1] == 0 and col_fills):
                buffer = machine.node(*east).memory.buffer(name)
                buffer[pad : pad + rows, :pad] = nan
            if not (west[1] == grid_cols - 1 and col_fills):
                buffer = machine.node(*west).memory.buffer(name)
                buffer[pad : pad + rows, pad + cols :] = nan
    return True


def _localize_bad_routes(
    machine: CM2,
    padded: np.ndarray,
    expected: np.ndarray,
    subgrid_shape: Tuple[int, int],
    depth: int,
    *,
    full_height_ew: bool,
) -> List[Tuple[Tuple[int, int], Tuple[int, int]]]:
    """Per-node, per-band parity comparison: which (receiver, sender)
    routes carried a bad message.  Corner blocks are not attributed --
    they travel the diagonal channels, which the link model leaves
    healthy."""
    rows, cols = subgrid_shape
    d = depth
    if d == 0:
        return []
    grid_rows, grid_cols = machine.shape
    if full_height_ew:
        west_slice = np.s_[:, :d]
        east_slice = np.s_[:, d + cols :]
    else:
        west_slice = np.s_[d : d + rows, :d]
        east_slice = np.s_[d : d + rows, d + cols :]
    bands = [
        (np.s_[:d, d : d + cols], lambda r, c: ((r - 1) % grid_rows, c)),
        (np.s_[d + rows :, d : d + cols], lambda r, c: ((r + 1) % grid_rows, c)),
        (west_slice, lambda r, c: (r, (c - 1) % grid_cols)),
        (east_slice, lambda r, c: (r, (c + 1) % grid_cols)),
    ]
    routes: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
    for r in range(grid_rows):
        for c in range(grid_cols):
            for band_slice, sender in bands:
                got = padded[..., r, c, :, :][(Ellipsis,) + band_slice]
                want = expected[..., r, c, :, :][(Ellipsis,) + band_slice]
                if parity_word(got) != parity_word(want):
                    routes.append(((r, c), sender(r, c)))
    return routes


def _exchange_halo_batched(
    source: CMArray,
    pattern: StencilPattern,
    stats: CommStats,
    name: str,
) -> bool:
    """The whole-machine exchange: one slice assignment per direction.

    The torus wrap is a roll along the node-grid axes of the stacked
    storage; FILL dimensions then overwrite the halo rows/columns of the
    global-edge nodes with the statement's boundary value.  Returns
    False (having moved nothing) when the source or destination cannot
    be stack-backed, in which case the caller runs the per-node loop.
    """
    machine = source.machine
    rows, cols = source.subgrid_shape
    pad = stats.pad
    stack = machine.stacked(source.name)
    if stack is None:
        return False
    padded = machine.stacked(name)
    if padded is None or padded.shape[2:] != (rows + 2 * pad, cols + 2 * pad):
        padded = machine.alloc_stacked(name, (rows + 2 * pad, cols + 2 * pad))
    _fill_padded_shallow(stack, padded, pattern, stats, (rows, cols))
    return True


def _fill_padded_shallow(
    stack: np.ndarray,
    padded: np.ndarray,
    pattern: StencilPattern,
    stats: CommStats,
    subgrid_shape: Tuple[int, int],
) -> None:
    """The batched exchange's pure data movement (no allocation).

    Leading-axes aware (see the module docstring): ``stack`` and
    ``padded`` may carry any number of axes ahead of the node-grid
    pair, and every leading-axis copy is exchanged in the same pass.
    """
    rows, cols = subgrid_shape
    pad = stats.pad
    # Step 1: every node's interior is its own subgrid.
    padded[..., pad : pad + rows, pad : pad + cols] = stack
    if pad == 0:
        return

    # Step 2: edges, exchanged with all four neighbors at once.  A roll
    # of +1 along a grid axis delivers each node the data of the
    # neighbor at the smaller index (its North/West neighbor), wrapping
    # at the torus seam.
    padded[..., :pad, pad : pad + cols] = np.roll(
        stack[..., rows - pad :, :], 1, axis=-4
    )
    padded[..., pad + rows :, pad : pad + cols] = np.roll(
        stack[..., :pad, :], -1, axis=-4
    )
    padded[..., pad : pad + rows, :pad] = np.roll(
        stack[..., cols - pad :], 1, axis=-3
    )
    padded[..., pad : pad + rows, pad + cols :] = np.roll(
        stack[..., :pad], -1, axis=-3
    )

    # Step 3: corners, unless the pattern has no diagonal reach.  When
    # skipped, the corner blocks are scrubbed to zero so a reused buffer
    # matches a freshly allocated one (temp storage, never read).
    if stats.corner_step_skipped:
        padded[..., :pad, :pad] = 0.0
        padded[..., :pad, pad + cols :] = 0.0
        padded[..., pad + rows :, :pad] = 0.0
        padded[..., pad + rows :, pad + cols :] = 0.0
    else:
        padded[..., :pad, :pad] = np.roll(
            stack[..., rows - pad :, cols - pad :], (1, 1), axis=(-4, -3)
        )
        padded[..., :pad, pad + cols :] = np.roll(
            stack[..., rows - pad :, :pad], (1, -1), axis=(-4, -3)
        )
        padded[..., pad + rows :, :pad] = np.roll(
            stack[..., :pad, cols - pad :], (-1, 1), axis=(-4, -3)
        )
        padded[..., pad + rows :, pad + cols :] = np.roll(
            stack[..., :pad, :pad], (-1, -1), axis=(-4, -3)
        )
    _apply_fill_shallow(padded, pattern, stats, subgrid_shape)


def _apply_fill_shallow(
    padded: np.ndarray,
    pattern: StencilPattern,
    stats: CommStats,
    subgrid_shape: Tuple[int, int],
) -> None:
    """(Re-)apply the FILL boundary overwrites to a shallow buffer.

    Kept separate from the data movement so the guarded path can apply
    link corruption to the exchanged bands and then restore the FILL
    bands -- no message ever crossed a link there, so a dead link
    cannot corrupt them.
    """
    rows, cols = subgrid_shape
    pad = stats.pad
    if pad == 0:
        return
    dim_row, dim_col = pattern.plane_dims
    fill = np.float32(pattern.fill_value)
    row_fills = (
        pattern.boundary.get(dim_row, BoundaryMode.CIRCULAR)
        is BoundaryMode.FILL
    )
    col_fills = (
        pattern.boundary.get(dim_col, BoundaryMode.CIRCULAR)
        is BoundaryMode.FILL
    )
    if row_fills:
        padded[..., 0, :, :pad, pad : pad + cols] = fill
        padded[..., -1, :, pad + rows :, pad : pad + cols] = fill
    if col_fills:
        padded[..., :, 0, pad : pad + rows, :pad] = fill
        padded[..., :, -1, pad : pad + rows, pad + cols :] = fill
    if stats.corner_step_skipped:
        return
    if row_fills:
        padded[..., 0, :, :pad, :pad] = fill
        padded[..., 0, :, :pad, pad + cols :] = fill
        padded[..., -1, :, pad + rows :, :pad] = fill
        padded[..., -1, :, pad + rows :, pad + cols :] = fill
    if col_fills:
        padded[..., :, 0, :pad, :pad] = fill
        padded[..., :, 0, pad + rows :, :pad] = fill
        padded[..., :, -1, :pad, pad + cols :] = fill
        padded[..., :, -1, pad + rows :, pad + cols :] = fill


def _exchange_halo_per_node(
    source: CMArray,
    pattern: StencilPattern,
    stats: CommStats,
    name: str,
) -> None:
    """The node-by-node exchange (the original implementation); the
    reference the batched path is tested bit-identical against."""
    machine = source.machine
    rows, cols = source.subgrid_shape
    pad = stats.pad
    # The per-node buffers about to be allocated detach from any stale
    # machine-wide stack; drop it so nothing reads the dead copy.
    machine.storage.free(name)

    for node in machine.nodes():
        padded = node.memory.allocate(name, (rows + 2 * pad, cols + 2 * pad))
        _fill_node_padded(
            machine, node, source.name, pattern, stats, (rows, cols), padded
        )


def _fill_node_padded(
    machine: CM2,
    node,
    source_name: str,
    pattern: StencilPattern,
    stats: CommStats,
    subgrid_shape: Tuple[int, int],
    padded: np.ndarray,
) -> None:
    """Fill one node's padded buffer (the per-node pure data movement)."""
    rows, cols = subgrid_shape
    pad = stats.pad
    dim_row, dim_col = pattern.plane_dims
    row_wraps = pattern.boundary.get(dim_row, BoundaryMode.CIRCULAR)
    col_wraps = pattern.boundary.get(dim_col, BoundaryMode.CIRCULAR)
    fill = np.float32(pattern.fill_value)
    grid_rows, grid_cols = machine.shape

    padded[pad : pad + rows, pad : pad + cols] = node.memory.buffer(source_name)
    if pad == 0:
        return
    r, c = node.coord.row, node.coord.col
    at_north = r == 0 and row_wraps is BoundaryMode.FILL
    at_south = r == grid_rows - 1 and row_wraps is BoundaryMode.FILL
    at_west = c == 0 and col_wraps is BoundaryMode.FILL
    at_east = c == grid_cols - 1 and col_wraps is BoundaryMode.FILL

    def subgrid(row: int, col: int) -> np.ndarray:
        return machine.node(row, col).memory.buffer(source_name)

    # Step 2: edges, exchanged with all four neighbors at once.
    padded[:pad, pad : pad + cols] = (
        fill if at_north else subgrid(r - 1, c)[rows - pad :, :]
    )
    padded[pad + rows :, pad : pad + cols] = (
        fill if at_south else subgrid(r + 1, c)[:pad, :]
    )
    padded[pad : pad + rows, :pad] = (
        fill if at_west else subgrid(r, c - 1)[:, cols - pad :]
    )
    padded[pad : pad + rows, pad + cols :] = (
        fill if at_east else subgrid(r, c + 1)[:, :pad]
    )

    # Step 3: corners, unless the pattern has no diagonal reach.
    if stats.corner_step_skipped:
        return
    padded[:pad, :pad] = (
        fill
        if (at_north or at_west)
        else subgrid(r - 1, c - 1)[rows - pad :, cols - pad :]
    )
    padded[:pad, pad + cols :] = (
        fill
        if (at_north or at_east)
        else subgrid(r - 1, c + 1)[rows - pad :, :pad]
    )
    padded[pad + rows :, :pad] = (
        fill
        if (at_south or at_west)
        else subgrid(r + 1, c - 1)[:pad, cols - pad :]
    )
    padded[pad + rows :, pad + cols :] = (
        fill
        if (at_south or at_east)
        else subgrid(r + 1, c + 1)[:pad, :pad]
    )
