"""Elementwise array passes outside the convolution compiler's scope.

The Gordon Bell seismic code adds its tenth term (data from two time
steps back) "separately" -- a stock elementwise multiply-add pass -- and
its unoptimized main loop performs "two assignment statements to shift
the time-step data into the correct variables" -- whole-array copies.
These passes run at the stock slicewise rate, not through the microcode
loops, which is exactly why the 3x-unrolled loop that eliminates the
copies runs at 14.88 instead of 11.62 gigaflops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.params import MachineParams
from .cm_array import CMArray


@dataclass(frozen=True)
class ElementwiseRun:
    """Cost accounting for one elementwise pass (per node, per call)."""

    operation: str
    cycles: int
    useful_flops_per_node: int
    host_seconds: float

    def seconds(self, params: MachineParams) -> float:
        return params.seconds(self.cycles) + self.host_seconds


def _points(array: CMArray) -> int:
    rows, cols = array.subgrid_shape
    return rows * cols


def add_scaled(
    result: CMArray,
    base: CMArray,
    coeff: CMArray,
    data: CMArray,
    params: MachineParams,
) -> ElementwiseRun:
    """``result = base + coeff * data``, elementwise (the tenth term).

    Cost per point: two register loads, one multiply-add with the
    coefficient streaming from memory, one store.
    """
    for node in result.machine.nodes():
        b = node.memory.buffer(base.name)
        c = node.memory.buffer(coeff.name)
        d = node.memory.buffer(data.name)
        out = node.memory.buffer(result.name)
        out[:] = (b + (c * d).astype(np.float32)).astype(np.float32)
    points = _points(result)
    cycles = points * (3 * params.memory_access_cycles + 1)
    return ElementwiseRun(
        operation="add_scaled",
        cycles=cycles,
        useful_flops_per_node=2 * points,  # one multiply + one add per point
        host_seconds=params.host_halfstrip_s,
    )


def copy_array(
    dst: CMArray, src: CMArray, params: MachineParams
) -> ElementwiseRun:
    """``dst = src``: the time-step shuffle the unrolled loop eliminates.

    Cost per point: one load and one store; no useful flops at all --
    pure overhead against the flop rate.
    """
    for node in dst.machine.nodes():
        node.memory.buffer(dst.name)[:] = node.memory.buffer(src.name)
    points = _points(dst)
    cycles = points * (2 * params.memory_access_cycles)
    return ElementwiseRun(
        operation="copy",
        cycles=cycles,
        useful_flops_per_node=0,
        host_seconds=params.host_halfstrip_s,
    )
