"""Batched multi-convolution: one machine pass for N grids x F filters.

The paper's run-time library amortizes communication *within* one
stencil application (one padded buffer, all four neighbors at once) and
temporal blocking amortizes it *across iterations* of one filter.  This
module amortizes it across an entire workload: ``apply_stencil_batch``
applies ``F`` compiled filters to ``B`` independent grids in one call,
and every filter that tolerates the same boundary treatment reads the
*same* exchanged halo.

Storage extends the classic ``(grid_rows, grid_cols, rows, cols)``
stacks with leading axes::

    source   (B,    grid_rows, grid_cols, rows,  cols )
    halo     (B,    grid_rows, grid_cols, rows', cols')   shared per group
    result   (B, F, grid_rows, grid_cols, rows,  cols )

Because every halo helper indexes the node grid at ``-4``/``-3`` and the
subgrid at ``-2``/``-1``, the same four slice assignments that exchange
one grid's halo exchange all ``B`` at once -- the amortization
primitive.  Filters are grouped by boundary treatment ``(row mode, col
mode, fill value)``; each group's first exchange per iteration is ONE
machine pass of ``B`` messages serving every member filter, instead of
the ``B x F`` messages a loop of solo calls would send.  Groups whose
members share a footprint (same pad, same corner reach) exchange at
exactly that footprint; mixed-footprint groups exchange once at the
widest member's pad with composed corners, and each filter reads its own
centered sub-window -- bit-identical to that filter's own exchange.

Front-end accounting draws the same distinction the sequencer hardware
does.  The address generator iterates the batch axis with a run-time
base-address stride, so the front end *issues* each filter's half-strip
schedule once per machine pass regardless of ``B`` (``host_half_strips``),
while the sequencer *executes* it ``B`` times (``total_half_strips``,
and the dispatch cycles inside the compute totals).  Host per-call
overhead is charged once per group machine pass, not once per
(grid, filter) -- this is where the batch throughput win over a loop of
solo calls comes from on small subgrids.

Bit-identity contract: ``apply_stencil_batch(...)`` entry ``(b, f)``
equals the result of ``apply_stencil(filters[f], sources[b], ...)``
bit for bit in float32, for every boundary mode, block depth, and
execution mode -- the batched executors replay the exact per-tap
multiply/add rounding chain of the solo paths, and shared halos are
provably bit-identical to per-filter halos (centered sub-windows and
composed corners reproduce the solo exchange's bytes; corner-skipping
filters never read corner cells).

Hard faults: the batched runtime detects dead nodes and dead links like
the solo guarded path (deadlines, checksums, reroutes) but does not arm
spare-node remapping -- a batch's working set has no per-name node
views to migrate -- so :class:`~repro.runtime.faults.NodeDeadError`
propagates as a typed error instead of triggering recovery.  The
stencil service refuses to combine spares with batched jobs for this
reason.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..compiler.plan import CompiledStencil
from ..machine.machine import CM2
from ..machine.params import MachineParams
from ..stencil.offsets import BoundaryMode
from ..stencil.pattern import StencilPattern
from .blocking import (
    array_coefficient_names,
    block_compute_cycles,
    block_steps,
    blockable,
    depth_cap,
)
from .abft import seal_checksums, verify_and_correct
from .cm_array import CMArray
from .decomposition import Decomposition
from .executor import (
    ExecutionSetupError,
    machine_execute_blocked,
    machine_execute_fast_stack,
    shape_mismatch,
)
from .faults import (
    FaultError,
    FaultGuard,
    FaultInjector,
    FaultStats,
    NonFiniteInputError,
    ResiliencePolicy,
)
from .halo import (
    deep_exchange_cost,
    exchange_halo_batch,
    exchange_halo_deep,
    exchange_halo_deep_width,
    exchange_halo_group,
)
from .stencil_op import apply_stencil
from .strips import StripSchedule


class CMBatch:
    """A batch of distributed arrays stored as one machine-wide stack.

    The batched counterpart of :class:`~repro.runtime.cm_array.CMArray`:
    ``lead_shape`` axes (batch entries, and for results a filter axis)
    sit ahead of the node grid, so one stacked buffer of shape
    ``lead_shape + (grid_rows, grid_cols, rows, cols)`` holds every
    entry and whole-machine operations (halo exchange, the stacked fast
    executor) serve all of them in one pass.  There are no per-node
    views -- the batch axes are a sequencer-side addressing construct;
    per-node code paths (exact mode) stage individual entries through
    ordinary :class:`CMArray` storage.
    """

    def __init__(
        self,
        name: str,
        machine: CM2,
        lead_shape: Tuple[int, ...],
        global_shape: Tuple[int, int],
    ) -> None:
        lead_shape = tuple(int(extent) for extent in lead_shape)
        if not lead_shape or any(extent < 1 for extent in lead_shape):
            raise ValueError(
                f"lead_shape must be a non-empty tuple of positive "
                f"extents, got {lead_shape}"
            )
        self.name = name
        self.machine = machine
        self.lead_shape = lead_shape
        self.decomposition = Decomposition(tuple(global_shape), machine)
        self._stacked = machine.alloc_batch_stacked(
            name, lead_shape, self.decomposition.subgrid_shape
        )

    @property
    def global_shape(self) -> Tuple[int, int]:
        return self.decomposition.global_shape

    @property
    def subgrid_shape(self) -> Tuple[int, int]:
        return self.decomposition.subgrid_shape

    @property
    def stacked(self) -> np.ndarray:
        """The whole-machine ``lead_shape + (grid_rows, grid_cols,
        rows, cols)`` stack."""
        return self._stacked

    @classmethod
    def from_numpy(cls, name: str, machine: CM2, array: np.ndarray) -> "CMBatch":
        """Create a batch from host data: the last two axes are the
        global array extents, everything ahead of them is the lead
        shape (scatter)."""
        array = np.asarray(array, dtype=np.float32)
        if array.ndim < 3:
            raise ValueError(
                f"a batch needs at least one lead axis ahead of the "
                f"global extents, got shape {array.shape}"
            )
        batch = cls(
            name, machine, tuple(array.shape[:-2]), tuple(array.shape[-2:])
        )
        batch.set(array)
        return batch

    def set(self, array: np.ndarray) -> None:
        """Scatter host data into every entry's node subgrids."""
        array = np.asarray(array, dtype=np.float32)
        want = self.lead_shape + self.global_shape
        if tuple(array.shape) != want:
            raise ValueError(
                f"array shape {array.shape} does not match the batch "
                f"shape {want}"
            )
        grid_rows, grid_cols = self.machine.shape
        rows, cols = self.subgrid_shape
        self._stacked[...] = array.reshape(
            self.lead_shape + (grid_rows, rows, grid_cols, cols)
        ).swapaxes(-3, -2)

    def fill(self, value: float) -> None:
        self._stacked[...] = np.float32(value)

    def to_numpy(self) -> np.ndarray:
        """Gather every entry into one host array of shape
        ``lead_shape + global_shape``."""
        return self._stacked.swapaxes(-3, -2).reshape(
            self.lead_shape + self.global_shape
        )

    def like(self, name: str, lead_shape: Optional[Tuple[int, ...]] = None) -> "CMBatch":
        """A new zero-filled batch on the same machine and global shape."""
        return CMBatch(
            name,
            self.machine,
            self.lead_shape if lead_shape is None else lead_shape,
            self.global_shape,
        )

    def free(self) -> None:
        """Release the machine storage backing this batch."""
        self.machine.storage.free(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows, cols = self.global_shape
        lead = "x".join(str(extent) for extent in self.lead_shape)
        return f"CMBatch({self.name!r}, {lead} of {rows}x{cols})"


@dataclass(frozen=True)
class FilterCost:
    """Per-filter cost attribution inside one batched run.

    Attributes:
        name: the filter's display name.
        index: its position in the run's filter tuple.
        block_depth: temporal block depth this filter ran at.
        pad: the filter's own halo width.
        shared_exchanges: group machine passes this filter shared (each
            one ``batch`` messages split across the group's members).
        own_exchanges: messages charged solely to this filter (iterated
            re-exchanges of its diverged state; later temporal blocks).
        coeff_exchanges: coefficient deep exchanges this filter caused
            (charged once each, amortized over the whole batch).
        comm_cycles: this filter's exchange cycles -- its own messages
            plus an even share of each shared machine pass (hence a
            float).
        compute_cycles: node compute cycles over all ``batch`` copies.
        half_strips: executed microcode invocations (scaled by
            ``batch``; the sequencer runs the schedule once per entry).
        useful_flops: useful flops this filter contributed to the run.
    """

    name: str
    index: int
    block_depth: int
    pad: int
    shared_exchanges: int
    own_exchanges: int
    coeff_exchanges: int
    comm_cycles: float
    compute_cycles: int
    half_strips: int
    useful_flops: int


@dataclass(frozen=True)
class BatchStencilRun:
    """The outcome and full accounting of one batched multi-convolution.

    Attributes:
        filters: the compiled filters, in application order.
        machine: the machine the batch ran on.
        result: the ``(batch, filter)``-lead result batch; entry
            ``[b, f]`` is filter ``f`` applied to grid ``b``.
        batch: number of independent source grids ``B``.
        iterations: iterations applied (every filter, every grid).
        exact: whether the cycle-stepped oracle path ran.
        block_depths: per-filter temporal block depth.
        num_exchanges: source halo messages charged over the whole run
            (a shared group pass counts ``batch`` messages -- the halos
            really move -- but rides on one machine pass).
        coeff_exchanges: coefficient deep exchanges (blocked runs);
            charged once per (coefficient, depth), NOT per batch entry.
        total_comm_cycles: all exchange cycles over the whole run.
        total_compute_cycles: all node compute cycles (scaled by
            ``batch``).
        total_half_strips: microcode invocations *executed* by the
            sequencer (scaled by ``batch``).
        host_half_strips: half-strip schedules *issued* by the front
            end -- once per (filter, machine pass), NOT scaled by
            ``batch``: the sequencer's batch-stride address loop repeats
            an issued schedule locally.
        host_calls: run-time-library invocations the host made (one per
            group machine pass; one per later temporal block).
        per_filter: per-filter attribution, one :class:`FilterCost`
            per filter.
        faults: chaos-run accounting; None on ordinary runs.
    """

    filters: Tuple[CompiledStencil, ...]
    machine: CM2
    result: CMBatch
    batch: int
    iterations: int
    exact: bool
    block_depths: Tuple[int, ...]
    num_exchanges: int
    coeff_exchanges: int
    total_comm_cycles: int
    total_compute_cycles: int
    total_half_strips: int
    host_half_strips: int
    host_calls: int
    per_filter: Tuple[FilterCost, ...]
    faults: Optional[FaultStats] = None

    @property
    def params(self) -> MachineParams:
        return self.filters[0].params

    @property
    def fault_stats(self) -> FaultStats:
        """Fault accounting, all-zero for ordinary (unguarded) runs."""
        return self.faults if self.faults is not None else FaultStats()

    @property
    def host_seconds_total(self) -> float:
        """Front-end time: per-call fixed cost for every library
        invocation plus the issue cost of every *issued* half strip
        (issued once per machine pass, independent of ``batch``)."""
        return (
            self.host_calls * self.params.host_fixed_s
            + self.host_half_strips * self.params.host_halfstrip_s
        )

    @property
    def elapsed_seconds(self) -> float:
        return (
            self.params.seconds(
                self.total_compute_cycles + self.total_comm_cycles
            )
            + self.host_seconds_total
        )

    @property
    def useful_flops(self) -> int:
        return sum(cost.useful_flops for cost in self.per_filter)

    @property
    def mflops(self) -> float:
        """Sustained useful Mflops over the whole batched run."""
        return self.useful_flops / self.elapsed_seconds / 1e6

    @property
    def gflops(self) -> float:
        return self.mflops / 1e3

    def describe(self) -> str:
        rows, cols = self.result.subgrid_shape
        return (
            f"{len(self.filters)} filters x {self.batch} grids on "
            f"{self.machine.num_nodes} nodes, {rows}x{cols} subgrids, "
            f"{self.iterations} iterations: {self.elapsed_seconds:.4f} s, "
            f"{self.mflops:.1f} Mflops ({self.num_exchanges} halo "
            f"messages, {self.host_calls} host calls)"
        )


@dataclass(frozen=True)
class _Group:
    """Filters sharing one halo exchange: same boundary treatment.

    ``uniform`` groups (every member the same pad AND the same corner
    reach) exchange at exactly that footprint, honoring the corner-step
    skip; mixed groups exchange once at ``width`` (the widest member's
    pad) with composed corners, and each member reads its own centered
    sub-window.
    """

    indices: Tuple[int, ...]
    uniform: bool
    width: int
    representative: StencilPattern


def _boundary_key(pattern: StencilPattern):
    dim_row, dim_col = pattern.plane_dims
    row_mode = pattern.boundary.get(dim_row, BoundaryMode.CIRCULAR)
    col_mode = pattern.boundary.get(dim_col, BoundaryMode.CIRCULAR)
    fill = (
        float(np.float32(pattern.fill_value))
        if BoundaryMode.FILL in (row_mode, col_mode)
        else None
    )
    return (row_mode, col_mode, fill)


def _filter_groups(patterns: Sequence[StencilPattern]) -> List[_Group]:
    """Partition filters into halo-sharing groups by boundary treatment."""
    by_key: Dict[object, List[int]] = {}
    order: List[object] = []
    for index, pattern in enumerate(patterns):
        key = _boundary_key(pattern)
        if key not in by_key:
            by_key[key] = []
            order.append(key)
        by_key[key].append(index)
    groups = []
    for key in order:
        indices = tuple(by_key[key])
        pads = [patterns[i].border_widths().max_width for i in indices]
        corners = [patterns[i].needs_corner_exchange() for i in indices]
        uniform = len(set(pads)) == 1 and len(set(corners)) == 1
        groups.append(
            _Group(
                indices=indices,
                uniform=uniform,
                width=max(pads),
                representative=patterns[indices[0]],
            )
        )
    return groups


def _merge_fault_stats(
    total: Optional[FaultStats], extra: FaultStats
) -> FaultStats:
    """Accumulate one staged run's fault accounting into the batch's."""
    if total is None:
        total = FaultStats()
    for kind, count in extra.injected.items():
        total.injected[kind] = total.injected.get(kind, 0) + count
    for kind, count in extra.detected.items():
        total.detected[kind] = total.detected.get(kind, 0) + count
    for name in FaultStats._COUNTER_FIELDS:
        setattr(total, name, getattr(total, name) + getattr(extra, name))
    total.events.extend(extra.events)
    total.degradations = total.degradations + extra.degradations
    return total


def _resolve_coefficient_stacks(
    machine: CM2,
    filters: Sequence[CompiledStencil],
    coefficients: Dict[str, CMArray],
    global_shape: Tuple[int, int],
) -> Dict[str, np.ndarray]:
    """The machine-wide stack behind every coefficient name any filter
    reads: the caller's array when supplied, otherwise a resident
    stacked array under the statement name."""
    stacks: Dict[str, np.ndarray] = {}
    for compiled in filters:
        for name in array_coefficient_names(compiled.pattern):
            if name in stacks:
                continue
            array = coefficients.get(name)
            if array is not None:
                if array.machine is not machine:
                    raise ExecutionSetupError(
                        f"coefficient {name!r} lives on a different machine"
                    )
                if array.global_shape != tuple(global_shape):
                    raise ExecutionSetupError(
                        shape_mismatch(
                            f"coefficient {name!r}",
                            array.global_shape,
                            tuple(global_shape),
                        )
                    )
                stack = machine.stacked(array.name)
            else:
                stack = machine.stacked(name)
            if stack is None:
                raise ExecutionSetupError(
                    f"coefficient {name!r} is neither supplied nor resident "
                    f"on the machine as a stacked array"
                )
            stacks[name] = stack
    return stacks


def _resolve_batch_depths(
    filters: Sequence[CompiledStencil],
    subgrid_shape: Tuple[int, int],
    iterations: int,
    exact: bool,
    guarded: bool,
    block_depth: Union[int, str],
    batch: int,
    machine: Optional[CM2],
    tenant: Optional[str],
) -> Tuple[int, ...]:
    """Per-filter temporal block depths for a batched run.

    Exact mode, single calls, and guarded (chaos) runs resolve every
    filter to depth 1 -- the guarded batch protocol exchanges and
    verifies per iteration.  ``"auto"`` prices each filter through the
    batch-aware cost model (coefficient exchanges amortize over the
    whole batch, so blocking pays off earlier than solo).
    """
    if block_depth == "auto":
        requested = None
    elif isinstance(block_depth, int) and not isinstance(block_depth, bool):
        if block_depth < 1:
            raise ValueError(
                f"block_depth must be a positive int or 'auto', "
                f"got {block_depth}"
            )
        requested = block_depth
    else:
        raise ValueError(
            f"block_depth must be a positive int or 'auto', got {block_depth!r}"
        )
    if exact or guarded or iterations < 2:
        return tuple(1 for _ in filters)
    if requested is not None:
        return tuple(
            min(requested, depth_cap(f.pattern, subgrid_shape, iterations))
            if blockable(f.pattern)
            else 1
            for f in filters
        )
    from ..compiler.driver import select_batch_block_depths

    return select_batch_block_depths(
        filters,
        subgrid_shape,
        iterations,
        batch,
        machine=machine,
        tenant=tenant,
    )


def _new_counters(num_filters: int) -> Dict[str, object]:
    return {
        "num_exchanges": 0,
        "coeff_exchanges": 0,
        "total_comm_cycles": 0,
        "total_compute_cycles": 0,
        "total_half_strips": 0,
        "host_half_strips": 0,
        "host_calls": 0,
        "f_shared": [0] * num_filters,
        "f_own": [0] * num_filters,
        "f_coeff": [0] * num_filters,
        "f_comm": [0.0] * num_filters,
        "f_compute": [0] * num_filters,
        "f_strips": [0] * num_filters,
        "faults": None,
    }


def _run_unblocked(
    filters: Sequence[CompiledStencil],
    source_stack: np.ndarray,
    result6: np.ndarray,
    coeff_stacks: Dict[str, np.ndarray],
    subgrid_shape: Tuple[int, int],
    params: MachineParams,
    iterations: int,
    groups: List[_Group],
    machine: CM2,
    guard: Optional[FaultGuard],
) -> Dict[str, object]:
    """The per-iteration batched fast path (all block depths 1).

    Iteration 0 of each group is the amortized machine pass: every
    member filter reads the same exchanged source halo.  From iteration
    1 on, filter states have diverged, so each group re-exchanges all
    its members' states in one 6-d machine pass (``batch * members``
    messages -- the data really differs -- but still one host call and
    one set of slice assignments per group).

    No fixed-point short-circuit: the solo path charges skipped
    iterations in full anyway, so computing them keeps bits and totals
    identical at less bookkeeping.
    """
    rows, cols = subgrid_shape
    batch = int(source_stack.shape[0])
    counters = _new_counters(len(filters))
    schedules = [StripSchedule.cached(f, subgrid_shape) for f in filters]
    pass_cycles = [schedule.compute_cycles(params) for schedule in schedules]
    pass_strips = [schedule.num_half_strips for schedule in schedules]

    acc = machine.scratch_stacked("__batch_acc__", subgrid_shape, (batch,))
    prod = machine.scratch_stacked("__batch_prod__", subgrid_shape, (batch,))

    # ABFT per filter: each filter's result slab gets its own seal
    # (sealed after the pass, SDC window opened, verified before the
    # next gather reads it and once more at run end).  The checksum
    # vectors ride the same leading (batch,) axis as the data, so mixed
    # pads and shared k==0 halos need no special casing.  Uncorrectable
    # damage raises the typed SdcUncorrectableError straight out of the
    # batched run -- like a dead node, batched runs do not arm the
    # rollback ladder.
    abft_on = guard is not None and guard.policy.abft
    abft_words = batch * rows * cols

    def abft_key(fi: int) -> str:
        return f"__abft_batch_f{fi}__"

    def abft_verify(fi: int, site: str) -> None:
        guard.charge_abft(abft_words, verifies=1)
        corrected = verify_and_correct(
            result6[:, fi],
            machine.storage.get_abft(abft_key(fi)),
            site=site,
            guard=guard,
        )
        if corrected:
            guard.charge_sdc_correction(corrected)

    for k in range(iterations):
        for gi, group in enumerate(groups):
            members = group.indices
            width = group.width
            padded_shape = (rows + 2 * width, cols + 2 * width)
            if k == 0:
                # Every filter reads the same source: one machine pass
                # of `batch` messages serves the whole group.
                padded = machine.scratch_stacked(
                    f"__batch_halo_g{gi}__", padded_shape, (batch,)
                )
                copies = batch
                stack = source_stack
                views = {fi: padded for fi in members}
            else:
                # Diverged filter states: one machine pass still, but
                # every (entry, filter) halo is its own message.  The
                # advanced-indexed gather is a copy; the exchange reads
                # and verifies against that copy, and results are
                # written straight back into the result stack.
                padded = machine.scratch_stacked(
                    f"__batch_halo6_g{gi}__",
                    padded_shape,
                    (batch, len(members)),
                )
                copies = batch * len(members)
                if abft_on:
                    # Verify every member's slab before the gather
                    # copies it into the exchange: corrupted bits must
                    # never leave the resident tile.
                    for fi in members:
                        abft_verify(
                            fi,
                            f"abft batched gather "
                            f"(filter {fi}, iteration {k})",
                        )
                stack = result6[:, list(members)]
                views = {fi: padded[:, j] for j, fi in enumerate(members)}
            if group.uniform:
                stats = exchange_halo_batch(
                    stack,
                    padded,
                    group.representative,
                    subgrid_shape,
                    params,
                    copies=copies,
                    guard=guard,
                    site=f"batch exchange (group {gi}, iteration {k})",
                )
            else:
                stats = exchange_halo_group(
                    stack,
                    padded,
                    group.representative,
                    subgrid_shape,
                    params,
                    width,
                    copies=copies,
                    guard=guard,
                    site=f"group exchange (group {gi}, iteration {k})",
                )
            counters["host_calls"] += 1
            counters["num_exchanges"] += copies
            counters["total_comm_cycles"] += copies * stats.cycles
            for fi in members:
                if k == 0:
                    counters["f_shared"][fi] += 1
                    counters["f_comm"][fi] += (
                        batch * stats.cycles / len(members)
                    )
                else:
                    counters["f_own"][fi] += batch
                    counters["f_comm"][fi] += batch * stats.cycles

            for fi in members:
                compiled = filters[fi]
                out = result6[:, fi]
                attempt = 0
                while True:
                    attempt += 1
                    machine_execute_fast_stack(
                        compiled.pattern,
                        padded=views[fi],
                        coeff_stacks=coeff_stacks,
                        halo=width,
                        out=out,
                        acc=acc,
                        scratch=prod,
                    )
                    counters["host_half_strips"] += pass_strips[fi]
                    if guard is None:
                        break
                    guard.inject_poison(out)
                    try:
                        guard.verify_finite(
                            out,
                            f"batched fast executor result "
                            f"(filter {fi}, iteration {k})",
                        )
                    except FaultError:
                        # The failed pass still burned its cycles; the
                        # padded input is untouched by the executor, so
                        # a recompute is a clean retry.
                        guard.charge_compute(
                            batch * pass_cycles[fi],
                            batch * pass_strips[fi],
                            recovery=True,
                        )
                        if attempt > guard.policy.max_retries:
                            raise
                        guard.note_recompute()
                        continue
                    guard.charge_compute(
                        batch * pass_cycles[fi], batch * pass_strips[fi]
                    )
                    break
                counters["total_compute_cycles"] += batch * pass_cycles[fi]
                counters["total_half_strips"] += batch * pass_strips[fi]
                counters["f_compute"][fi] += batch * pass_cycles[fi]
                counters["f_strips"][fi] += batch * pass_strips[fi]
                if abft_on:
                    machine.storage.seal_abft(
                        abft_key(fi), seal_checksums(result6[:, fi])
                    )
                    guard.charge_abft(abft_words, seals=1)
                    guard.inject_sdc(
                        [(
                            f"batched result stack (filter {fi})",
                            result6[:, fi],
                        )]
                    )

    if abft_on:
        # Run-end sweep: the last iteration's SDC windows have not been
        # verified yet; nothing unverified may reach the caller.
        for fi in range(len(filters)):
            abft_verify(fi, f"abft batched run end (filter {fi})")
            machine.storage.clear_abft(abft_key(fi))

    if guard is not None:
        counters["num_exchanges"] = guard.exchanges
        counters["coeff_exchanges"] = guard.coeff_exchanges
        counters["total_comm_cycles"] = guard.comm_cycles
        counters["total_compute_cycles"] = guard.compute_cycles
        counters["total_half_strips"] = guard.half_strips
        counters["faults"] = guard.stats
    return counters


def _run_blocked(
    filters: Sequence[CompiledStencil],
    source_stack: np.ndarray,
    result6: np.ndarray,
    coeff_stacks: Dict[str, np.ndarray],
    subgrid_shape: Tuple[int, int],
    params: MachineParams,
    iterations: int,
    depths: Tuple[int, ...],
    groups: List[_Group],
    machine: CM2,
) -> Dict[str, object]:
    """The temporally blocked batched path (any filter's depth > 1).

    Every filter runs blocked at its own depth (depth-1 filters run
    one-step blocks, which are bit- and cost-identical to per-iteration
    exchanges with composed-corner halos).  Per group, the *first*
    block's input is one shared machine pass at the largest deep width
    any member needs; each filter copies its centered window out
    locally.  Coefficient deep exchanges are charged once per
    (coefficient, deep width) -- amortized over the whole batch, where a
    loop of solo blocked calls would pay them ``batch`` times.  Later
    blocks re-exchange each filter's own diverged state.
    """
    rows, cols = subgrid_shape
    batch = int(source_stack.shape[0])
    counters = _new_counters(len(filters))

    for gi, group in enumerate(groups):
        members = group.indices
        pads = {
            fi: filters[fi].pattern.border_widths().max_width
            for fi in members
        }
        deeps = {fi: depths[fi] * pads[fi] for fi in members}
        wide = max(deeps.values())
        shared = machine.scratch_stacked(
            f"__batch_deep_g{gi}__",
            (rows + 2 * wide, cols + 2 * wide),
            (batch,),
        )
        shared_stats = exchange_halo_deep_width(
            source_stack,
            shared,
            group.representative,
            subgrid_shape,
            params,
            wide,
        )
        counters["host_calls"] += 1
        counters["num_exchanges"] += batch
        counters["total_comm_cycles"] += batch * shared_stats.cycles
        for fi in members:
            counters["f_shared"][fi] += 1
            counters["f_comm"][fi] += (
                batch * shared_stats.cycles / len(members)
            )

        coeff_done: Dict[Tuple[str, int], np.ndarray] = {}
        for fi in members:
            compiled = filters[fi]
            pattern = compiled.pattern
            pad = pads[fi]
            deep = deeps[fi]
            blocks = list(block_steps(iterations, depths[fi]))
            padded_shape = (rows + 2 * deep, cols + 2 * deep)
            ping = machine.scratch_stacked(
                f"__batch_blk_ping_{gi}_{fi}__", padded_shape, (batch,)
            )
            pong = machine.scratch_stacked(
                f"__batch_blk_pong_{gi}_{fi}__", padded_shape, (batch,)
            )
            prod = machine.scratch_stacked(
                f"__batch_blk_prod_{gi}_{fi}__", padded_shape, (batch,)
            )
            deep_coeffs: Dict[str, np.ndarray] = {}
            for name in array_coefficient_names(pattern):
                buf = coeff_done.get((name, deep))
                if buf is None:
                    # One 4-d exchange serves every batch entry -- the
                    # coefficients are shared across the batch, so this
                    # is charged ONCE, not `batch` times.
                    buf = machine.scratch_stacked(
                        f"{name}__deep{deep}_g{gi}__", padded_shape
                    )
                    coeff_stats = exchange_halo_deep(
                        coeff_stacks[name],
                        buf,
                        pattern,
                        subgrid_shape,
                        params,
                        depths[fi],
                    )
                    coeff_done[(name, deep)] = buf
                    counters["coeff_exchanges"] += 1
                    counters["total_comm_cycles"] += coeff_stats.cycles
                    counters["f_coeff"][fi] += 1
                    counters["f_comm"][fi] += coeff_stats.cycles
                deep_coeffs[name] = buf

            for index, steps in enumerate(blocks):
                deep_b = steps * pad
                if deep_b < deep:
                    delta = deep - deep_b
                    window = (
                        Ellipsis,
                        slice(delta, delta + rows + 2 * deep_b),
                        slice(delta, delta + cols + 2 * deep_b),
                    )
                    ping_v, pong_v = ping[window], pong[window]
                    coeffs_v = {
                        name: buf[window] for name, buf in deep_coeffs.items()
                    }
                else:
                    ping_v, pong_v, coeffs_v = ping, pong, deep_coeffs
                if index == 0:
                    # The shared group exchange already holds this
                    # filter's deep halo: its centered sub-window is
                    # bit-identical to the filter's own deep exchange.
                    # A local copy, no messages.
                    offset = wide - deep_b
                    ping_v[...] = shared[
                        ...,
                        offset : offset + rows + 2 * deep_b,
                        offset : offset + cols + 2 * deep_b,
                    ]
                else:
                    block_stats = exchange_halo_deep(
                        result6[:, fi],
                        ping_v,
                        pattern,
                        subgrid_shape,
                        params,
                        steps,
                    )
                    counters["host_calls"] += 1
                    counters["num_exchanges"] += batch
                    counters["total_comm_cycles"] += batch * block_stats.cycles
                    counters["f_own"][fi] += batch
                    counters["f_comm"][fi] += batch * block_stats.cycles
                final, fixed = machine_execute_blocked(
                    pattern,
                    ping=ping_v,
                    pong=pong_v,
                    deep_coeffs=coeffs_v,
                    subgrid_shape=subgrid_shape,
                    pad=pad,
                    steps=steps,
                    scratch=prod,
                )
                result6[:, fi] = final[
                    ..., deep_b : deep_b + rows, deep_b : deep_b + cols
                ]
                cycles, strips = block_compute_cycles(
                    compiled, subgrid_shape, steps
                )
                counters["total_compute_cycles"] += batch * cycles
                counters["total_half_strips"] += batch * strips
                counters["host_half_strips"] += strips
                counters["f_compute"][fi] += batch * cycles
                counters["f_strips"][fi] += batch * strips
                if fixed:
                    # Every batch entry hit the fixed point at once (the
                    # blocked executor compares the whole stack); charge
                    # the skipped blocks in full, like the solo path.
                    for later_steps in blocks[index + 1 :]:
                        later_stats = deep_exchange_cost(
                            pattern, subgrid_shape, params, later_steps
                        )
                        counters["host_calls"] += 1
                        counters["num_exchanges"] += batch
                        counters["total_comm_cycles"] += (
                            batch * later_stats.cycles
                        )
                        counters["f_own"][fi] += batch
                        counters["f_comm"][fi] += batch * later_stats.cycles
                        later_cycles, later_strips = block_compute_cycles(
                            compiled, subgrid_shape, later_steps
                        )
                        counters["total_compute_cycles"] += (
                            batch * later_cycles
                        )
                        counters["total_half_strips"] += batch * later_strips
                        counters["host_half_strips"] += later_strips
                        counters["f_compute"][fi] += batch * later_cycles
                        counters["f_strips"][fi] += batch * later_strips
                    break
    return counters


def _run_exact(
    filters: Sequence[CompiledStencil],
    source_stack: np.ndarray,
    result6: np.ndarray,
    coefficients: Dict[str, CMArray],
    subgrid_shape: Tuple[int, int],
    global_shape: Tuple[int, int],
    iterations: int,
    machine: CM2,
    faults: Optional[FaultInjector],
    resilience: Optional[ResiliencePolicy],
) -> Dict[str, object]:
    """The staged exact oracle: one cycle-stepped solo run per
    ``(grid, filter)`` pair through :func:`apply_stencil`.

    Exact mode exercises the per-node datapath, which addresses named
    node buffers -- there is nothing to amortize, so the accounting is
    the plain sum of the staged runs (``host_half_strips`` equals the
    executed total).  This is the verification oracle the batched fast
    paths are measured against, not a performance path.
    """
    batch = int(source_stack.shape[0])
    counters = _new_counters(len(filters))
    grid_rows, grid_cols = machine.shape
    rows, cols = subgrid_shape
    merged: Optional[FaultStats] = None
    try:
        for b in range(batch):
            host_entry = (
                source_stack[b]
                .swapaxes(-3, -2)
                .reshape(grid_rows * rows, grid_cols * cols)
            )
            staged = CMArray.from_numpy(
                "__batch_exact_src__", machine, host_entry
            )
            for fi, compiled in enumerate(filters):
                staged_result = CMArray(
                    "__batch_exact_res__", machine, tuple(global_shape)
                )
                run = apply_stencil(
                    compiled,
                    staged,
                    coefficients,
                    staged_result,
                    iterations=iterations,
                    exact=True,
                    faults=faults,
                    resilience=resilience,
                )
                result6[b, fi] = staged_result.stacked
                counters["num_exchanges"] += run.exchanges
                counters["total_comm_cycles"] += run.comm_cycles_total
                counters["total_compute_cycles"] += run.compute_cycles_total
                counters["total_half_strips"] += run.half_strips_total
                counters["host_half_strips"] += run.half_strips_total
                counters["host_calls"] += run.host_calls
                counters["f_own"][fi] += run.exchanges
                counters["f_comm"][fi] += run.comm_cycles_total
                counters["f_compute"][fi] += run.compute_cycles_total
                counters["f_strips"][fi] += run.half_strips_total
                if run.faults is not None:
                    merged = _merge_fault_stats(merged, run.faults)
    finally:
        machine.free_stacked("__batch_exact_src__")
        machine.free_stacked("__batch_exact_res__")
    counters["faults"] = merged
    return counters


def apply_stencil_batch(
    filters: Sequence[CompiledStencil],
    sources: Union[CMBatch, Sequence[CMArray]],
    coefficients: Optional[Dict[str, CMArray]] = None,
    result: Union[CMBatch, str, None] = None,
    *,
    iterations: int = 1,
    exact: bool = False,
    block_depth: Union[int, str] = 1,
    check_finite: bool = False,
    faults: Optional[FaultInjector] = None,
    resilience: Optional[ResiliencePolicy] = None,
    abft: bool = False,
    tenant: Optional[str] = None,
) -> BatchStencilRun:
    """Apply ``F`` compiled filters to ``B`` grids in one machine-wide
    batched call.

    Args:
        filters: the compiled stencils to apply, all sharing machine
            parameters.  Fused extra terms are not supported on the
            batched path.
        sources: a ``(B,)``-lead :class:`CMBatch`, or a sequence of
            :class:`~repro.runtime.cm_array.CMArray` on the same machine
            and global shape (staged into a batched scratch stack).
        coefficients: coefficient arrays by statement name, shared by
            every filter and batch entry (unsupplied names fall back to
            resident machine arrays, like solo calls).
        result: a ``(B, F)``-lead :class:`CMBatch`, its name, or None
            to create one named ``<result>__batch__``.
        iterations: iterations per (grid, filter), each feeding its own
            previous iterate back, exactly like ``iterations`` solo
            calls.
        exact: run the staged cycle-stepped oracle instead of the
            batched fast path.
        block_depth: temporal block depth: ``1`` per-iteration
            exchanges, an int > 1 a requested depth (clamped per filter
            to what its pad and the subgrid support), ``"auto"`` the
            per-filter batch-aware modeled optimum.  Bit-identical at
            every depth.
        check_finite: validate source and coefficients up front,
            raising :class:`~repro.runtime.faults.NonFiniteInputError`
            naming the offending array.
        faults: a seeded :class:`~repro.runtime.faults.FaultInjector`
            for chaos runs; switches onto the guarded batch path
            (checksummed retried group exchanges, poison/finiteness
            verification and bounded recompute per filter pass).  Block
            depths are forced to 1.  Dead nodes raise
            :class:`~repro.runtime.faults.NodeDeadError` -- batched runs
            do not arm spare-node remapping.
        resilience: detection/recovery knobs for the guarded path.
        abft: switch onto the guarded path with
            :attr:`ResiliencePolicy.abft` enabled: every filter's
            result slab is checksum-sealed after its pass and verified
            before the next gather (and at run end), single corrupted
            words forward-corrected in place, multi-cell damage raised
            as the typed
            :class:`~repro.runtime.faults.SdcUncorrectableError` (see
            :mod:`repro.runtime.abft`).
        tenant: tenant id scoping compile/depth cache telemetry.

    Returns:
        a :class:`BatchStencilRun`; entry ``[b, f]`` of its result is
        bit-identical to ``apply_stencil(filters[f], sources[b], ...)``.
    """
    filters = tuple(filters)
    if not filters:
        raise ValueError("at least one compiled filter is required")
    if iterations < 1:
        raise ValueError("iterations must be positive")
    coefficients = dict(coefficients or {})

    params = filters[0].params
    for fi, compiled in enumerate(filters[1:], start=1):
        if compiled.params != params:
            raise ExecutionSetupError(
                f"filter {fi} was compiled for different machine "
                f"parameters; a batch shares one machine configuration"
            )

    # ------------------------------------------------------------------
    # Source staging
    # ------------------------------------------------------------------
    if isinstance(sources, CMBatch):
        if len(sources.lead_shape) != 1:
            raise ExecutionSetupError(
                f"a source batch must have exactly one lead axis "
                f"(the batch), got lead shape {sources.lead_shape}"
            )
        machine = sources.machine
        batch = sources.lead_shape[0]
        global_shape = sources.global_shape
        subgrid_shape = sources.subgrid_shape
        source_stack = sources.stacked
        source_names = {sources.name}
    else:
        entries = list(sources)
        if not entries:
            raise ValueError("sources must not be empty")
        machine = entries[0].machine
        global_shape = entries[0].global_shape
        subgrid_shape = entries[0].subgrid_shape
        for i, array in enumerate(entries):
            if array.machine is not machine:
                raise ExecutionSetupError(
                    f"batch source {i} ({array.name!r}) lives on a "
                    f"different machine"
                )
            if array.global_shape != global_shape:
                raise ExecutionSetupError(
                    shape_mismatch(
                        f"batch source {i} ({array.name!r})",
                        array.global_shape,
                        global_shape,
                    )
                )
        batch = len(entries)
        source_stack = machine.scratch_stacked(
            "__batch_source__", subgrid_shape, (batch,)
        )
        for b, array in enumerate(entries):
            stack = machine.stacked(array.name)
            if stack is not None:
                source_stack[b] = stack
            else:
                for node in machine.nodes():
                    source_stack[b, node.coord.row, node.coord.col] = (
                        node.memory.buffer(array.name)
                    )
        source_names = {array.name for array in entries}

    # ------------------------------------------------------------------
    # Filter validation
    # ------------------------------------------------------------------
    rows, cols = subgrid_shape
    for fi, compiled in enumerate(filters):
        pattern = compiled.pattern
        label = pattern.name or f"filter {fi}"
        if getattr(pattern, "extra_terms", ()):
            raise ExecutionSetupError(
                f"the batched runtime does not support fused extra terms "
                f"({label})"
            )
        pad = pattern.border_widths().max_width
        if pad > min(rows, cols):
            raise ExecutionSetupError(
                f"halo width {pad} of {label} exceeds the subgrid extent "
                f"{subgrid_shape}; the exchange primitive reaches only "
                f"immediate neighbors"
            )

    coeff_stacks = _resolve_coefficient_stacks(
        machine, filters, coefficients, global_shape
    )

    # ------------------------------------------------------------------
    # Result resolution (alias checks BEFORE any allocation can clobber
    # a same-named source)
    # ------------------------------------------------------------------
    if result is None:
        result = f"{filters[0].pattern.result}__batch__"
    if isinstance(result, str):
        if result in source_names:
            raise ExecutionSetupError(
                f"result {result!r} must not alias a source array"
            )
        result = CMBatch(
            result, machine, (batch, len(filters)), global_shape
        )
    else:
        if result is sources or result.name in source_names:
            raise ExecutionSetupError(
                f"result {result.name!r} must not alias a source array"
            )
        if result.machine is not machine:
            raise ExecutionSetupError(
                f"result {result.name!r} lives on a different machine"
            )
        want = (batch, len(filters)) + tuple(global_shape)
        got = result.lead_shape + result.global_shape
        if got != want:
            raise ExecutionSetupError(
                shape_mismatch(f"result batch {result.name!r}", got, want)
            )

    if check_finite:
        if not np.isfinite(source_stack).all():
            raise NonFiniteInputError(
                "batch source contains non-finite values"
            )
        for name, stack in coeff_stacks.items():
            if not np.isfinite(stack).all():
                raise NonFiniteInputError(
                    f"coefficient array {name!r} contains non-finite values"
                )

    if abft:
        if resilience is None:
            resilience = ResiliencePolicy(abft=True)
        elif not resilience.abft:
            resilience = replace(resilience, abft=True)
    guarded = faults is not None or resilience is not None
    depths = _resolve_batch_depths(
        filters,
        subgrid_shape,
        iterations,
        exact,
        guarded,
        block_depth,
        batch,
        machine,
        tenant,
    )
    groups = _filter_groups([compiled.pattern for compiled in filters])
    result6 = result.stacked

    if exact:
        counters = _run_exact(
            filters,
            source_stack,
            result6,
            coefficients,
            subgrid_shape,
            global_shape,
            iterations,
            machine,
            faults,
            resilience,
        )
    elif any(depth > 1 for depth in depths):
        counters = _run_blocked(
            filters,
            source_stack,
            result6,
            coeff_stacks,
            subgrid_shape,
            params,
            iterations,
            depths,
            groups,
            machine,
        )
    elif guarded:
        guard = FaultGuard(policy=resilience, injector=faults)
        guard.attach_machine(machine)
        counters = _run_unblocked(
            filters,
            source_stack,
            result6,
            coeff_stacks,
            subgrid_shape,
            params,
            iterations,
            groups,
            machine,
            guard,
        )
    else:
        counters = _run_unblocked(
            filters,
            source_stack,
            result6,
            coeff_stacks,
            subgrid_shape,
            params,
            iterations,
            groups,
            machine,
            None,
        )

    per_filter = []
    for fi, compiled in enumerate(filters):
        pattern = compiled.pattern
        per_filter.append(
            FilterCost(
                name=pattern.name or f"filter{fi}",
                index=fi,
                block_depth=depths[fi],
                pad=pattern.border_widths().max_width,
                shared_exchanges=counters["f_shared"][fi],
                own_exchanges=counters["f_own"][fi],
                coeff_exchanges=counters["f_coeff"][fi],
                comm_cycles=counters["f_comm"][fi],
                compute_cycles=counters["f_compute"][fi],
                half_strips=counters["f_strips"][fi],
                useful_flops=(
                    batch
                    * iterations
                    * rows
                    * cols
                    * machine.num_nodes
                    * pattern.useful_flops_per_point()
                ),
            )
        )

    return BatchStencilRun(
        filters=filters,
        machine=machine,
        result=result,
        batch=batch,
        iterations=iterations,
        exact=exact,
        block_depths=depths,
        num_exchanges=counters["num_exchanges"],
        coeff_exchanges=counters["coeff_exchanges"],
        total_comm_cycles=counters["total_comm_cycles"],
        total_compute_cycles=counters["total_compute_cycles"],
        total_half_strips=counters["total_half_strips"],
        host_half_strips=counters["host_half_strips"],
        host_calls=counters["host_calls"],
        per_filter=tuple(per_filter),
        faults=counters["faults"],
    )
