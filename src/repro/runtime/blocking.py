"""Temporal blocking: the deep-halo comm/compute cost model.

The paper's run-time library amortizes communication *within* one
stencil application: halo storage is allocated once and all four
neighbors are exchanged simultaneously.  Temporal blocking extends the
same idea *across* iterations of an iterated stencil: exchange a halo
``T`` times deeper once per block of ``T`` iterations, then run the
whole block locally, each sub-iteration consuming ``pad`` of the
remaining ghost depth.  One deep exchange replaces ``T`` shallow ones;
the price is redundant compute in the shrinking halo ring (each node
recomputes its neighbors' edge points instead of receiving them) plus
one deep halo exchange per coefficient array, whose border values the
halo-ring computation needs.

This module prices that trade without moving any data.  The executor
(:func:`repro.runtime.executor.machine_execute_blocked`) and the
plan-level depth selector
(:func:`repro.compiler.driver.select_block_depth`) both consume it, so
the accounting reported by :class:`~repro.runtime.stencil_op.StencilRun`
and the depth actually chosen always agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..compiler.plan import CompiledStencil
from ..stencil.pattern import CoeffKind, StencilPattern
from .halo import CommStats, deep_exchange_cost
from .strips import StripSchedule

#: Depth ceiling for automatic selection: past this the halo ring's
#: redundant compute dwarfs any further exchange amortization.
MAX_AUTO_DEPTH = 8


def array_coefficient_names(pattern: StencilPattern) -> Tuple[str, ...]:
    """Names of the spatially varying coefficient arrays.

    These must be deep-halo exchanged once per blocked call: computing a
    neighbor's edge points locally needs the neighbor's coefficients.
    """
    return tuple(
        dict.fromkeys(
            tap.coeff.name
            for tap in pattern.taps
            if tap.coeff.kind is CoeffKind.ARRAY
        )
    )


def blockable(pattern: StencilPattern) -> bool:
    """Whether a pattern can be temporally blocked at all.

    Patterns with no halo (``pad == 0``) have no exchange to amortize;
    fused extra terms read additional subgrid-shaped source arrays whose
    halos the deep exchange does not manage, so they fall back to the
    per-iteration exchange.
    """
    if pattern.border_widths().max_width == 0:
        return False
    return not getattr(pattern, "extra_terms", ())


def depth_cap(
    pattern: StencilPattern,
    subgrid_shape: Tuple[int, int],
    iterations: int,
) -> int:
    """The largest feasible block depth for this problem.

    The deep exchange still reaches only immediate neighbors, so the
    full halo depth ``T * pad`` cannot exceed the subgrid extent; depths
    beyond the iteration count or :data:`MAX_AUTO_DEPTH` buy nothing.
    """
    if not blockable(pattern):
        return 1
    pad = pattern.border_widths().max_width
    cap = min(subgrid_shape) // pad
    return max(1, min(cap, iterations, MAX_AUTO_DEPTH))


def block_steps(iterations: int, depth: int) -> Iterator[int]:
    """The per-block sub-iteration counts: full blocks of ``depth``,
    then the remainder."""
    remaining = iterations
    while remaining > 0:
        steps = min(depth, remaining)
        yield steps
        remaining -= steps


def sub_iteration_shapes(
    subgrid_shape: Tuple[int, int], pad: int, steps: int
) -> Iterator[Tuple[int, int]]:
    """Output-region shapes of one block's sub-iterations, first to
    last.  Sub-iteration ``t`` writes a region whose remaining ghost
    depth is ``(steps - 1 - t) * pad``; the last lands exactly on the
    subgrid."""
    rows, cols = subgrid_shape
    for t in range(steps):
        ghost = (steps - 1 - t) * pad
        yield (rows + 2 * ghost, cols + 2 * ghost)


def block_compute_cycles(
    compiled: CompiledStencil,
    subgrid_shape: Tuple[int, int],
    steps: int,
) -> Tuple[int, int]:
    """Compute cost of one ``steps``-deep temporal block, as
    ``(cycles, half_strips)`` summed over its sub-iterations'
    (halo-enlarged) strip schedules.  The unit the resilient runtime
    charges per block attempt, and the inner term of
    :func:`blocked_costs`."""
    pad = compiled.pattern.border_widths().max_width
    params = compiled.params
    cycles = 0
    half_strips = 0
    for shape in sub_iteration_shapes(subgrid_shape, pad, steps):
        schedule = StripSchedule.cached(compiled, shape)
        cycles += schedule.compute_cycles(params)
        half_strips += schedule.num_half_strips
    return cycles, half_strips


@dataclass(frozen=True)
class BlockedCosts:
    """The full modeled cost of one temporally blocked iterated run.

    Attributes:
        depth: the block depth ``T``.
        num_exchanges: source deep exchanges, ``ceil(iterations / T)``.
        coeff_exchanges: coefficient deep exchanges (once per array
            coefficient, reused by every block).
        block_comm: cost of one full-depth deep exchange.
        total_comm_cycles: all exchange cycles, source and coefficient.
        total_compute_cycles: node cycles over every sub-iteration's
            (halo-enlarged) strip schedule.
        total_half_strips: microcode invocations over the whole run.
    """

    depth: int
    num_exchanges: int
    coeff_exchanges: int
    block_comm: CommStats
    total_comm_cycles: int
    total_compute_cycles: int
    total_half_strips: int

    def modeled_seconds(self, params, iterations: int) -> float:
        """Modeled elapsed wall clock: machine cycles plus the front
        end's overhead.  The host issues ONE run-time-library call per
        block (the deep exchange and the whole local sub-iteration loop
        ride on it), so the per-call fixed cost is charged per block --
        that amortization is half the point of fusing.  Every
        sub-iteration's half strips still pass through the
        microcode-issue path and are charged in full."""
        machine = params.seconds(
            self.total_comm_cycles + self.total_compute_cycles
        )
        host = (
            self.num_exchanges * params.host_fixed_s
            + self.total_half_strips * params.host_halfstrip_s
        )
        return machine + host


def blocked_costs(
    compiled: CompiledStencil,
    subgrid_shape: Tuple[int, int],
    iterations: int,
    depth: int,
) -> BlockedCosts:
    """Price an iterated run at block depth ``depth``.

    ``depth == 1`` reproduces the unblocked accounting exactly: one
    shallow exchange and one subgrid-shaped schedule per iteration, no
    coefficient exchanges.
    """
    pattern = compiled.pattern
    params = compiled.params
    coeff_exchanges = (
        len(array_coefficient_names(pattern)) if depth > 1 else 0
    )
    full_stats = deep_exchange_cost(pattern, subgrid_shape, params, depth)
    comm_cycles = coeff_exchanges * full_stats.cycles
    compute_cycles = 0
    half_strips = 0
    num_exchanges = 0
    for steps in block_steps(iterations, depth):
        num_exchanges += 1
        comm_cycles += deep_exchange_cost(
            pattern, subgrid_shape, params, steps
        ).cycles
        cycles, strips = block_compute_cycles(compiled, subgrid_shape, steps)
        compute_cycles += cycles
        half_strips += strips
    return BlockedCosts(
        depth=depth,
        num_exchanges=num_exchanges,
        coeff_exchanges=coeff_exchanges,
        block_comm=full_stats,
        total_comm_cycles=comm_cycles,
        total_compute_cycles=compute_cycles,
        total_half_strips=half_strips,
    )


def reroute_penalty_cycles(
    machine, subgrid_shape: Tuple[int, int], params, depth: int, pad: int
) -> int:
    """Detour surcharge one full-depth deep exchange pays on ``machine``
    for its currently rerouted links.

    Mirrors the runtime's actual charge
    (:meth:`repro.runtime.faults.HealthMonitor.charge_detours` with
    full-height E/W bands, as blocked deep exchanges use): per rerouted
    link, one extra hop's startup plus the per-element cost of the band
    that link carried.  Zero on a healthy machine (or with no machine at
    all), so the fault-free depth choice is untouched.
    """
    if machine is None:
        return 0
    health = getattr(machine, "health", None)
    if health is None or not health.rerouted_links:
        return 0
    rows, cols = subgrid_shape
    deep = depth * pad
    penalty = 0
    for key in health.rerouted_links:
        state = health.dead_links.get(key)
        if state is None:
            continue
        if state.orientation == "v":
            elements = 2 * deep * cols
        else:
            elements = 2 * deep * (rows + 2 * deep)
        penalty += params.comm_startup_cycles + int(
            params.comm_cycles_per_element * elements
        )
    return penalty


def best_block_depth(
    compiled: CompiledStencil,
    subgrid_shape: Tuple[int, int],
    iterations: int,
    max_depth: Optional[int] = None,
    machine=None,
) -> int:
    """The block depth with the lowest modeled elapsed time.

    Sweeps every feasible depth through :func:`blocked_costs` and keeps
    the cheapest; ties go to the shallower depth (less temporary
    storage, less redundant work).  Returns 1 -- no blocking -- whenever
    the deep exchanges saved never repay the halo ring's redundant
    compute, which on this machine model is the common regime: grid
    communication is cheap per element, so blocking wins only where the
    per-exchange startup dominates (small subgrids, many iterations).

    When ``machine`` carries rerouted links (hard link faults routed
    around), every candidate's exchanges are surcharged with the
    per-depth detour cost (:func:`reroute_penalty_cycles`), so the
    selection prices the machine as it is, not as it was built.
    """
    cap = depth_cap(compiled.pattern, subgrid_shape, iterations)
    if max_depth is not None:
        cap = min(cap, max_depth)
    pad = compiled.pattern.border_widths().max_width
    best = 1
    best_seconds = None
    for depth in range(1, cap + 1):
        costs = blocked_costs(compiled, subgrid_shape, iterations, depth)
        seconds = costs.modeled_seconds(compiled.params, iterations)
        penalty = reroute_penalty_cycles(
            machine, subgrid_shape, compiled.params, depth, pad
        )
        if penalty:
            total_exchanges = costs.num_exchanges + costs.coeff_exchanges
            seconds += compiled.params.seconds(penalty * total_exchanges)
        if best_seconds is None or seconds < best_seconds:
            best = depth
            best_seconds = seconds
    return best


@dataclass(frozen=True)
class BatchBlockedCosts:
    """The modeled cost of one filter of a batched run at a given depth.

    The batch-aware counterpart of :class:`BlockedCosts`, pricing a
    *solo-filter* batch (no cross-filter sharing -- the depth selector
    prices each filter independently; sharing only ever removes cost, so
    the per-filter optimum is conservative).  Two quantities scale
    differently from the solo model:

    * exchanges and compute scale with ``batch`` (every entry's halo
      really moves, every entry's block really runs), but
    * coefficient deep exchanges are charged ONCE -- the coefficients
      are shared across the batch, so blocking's fixed cost amortizes
      over all ``batch`` entries, and

    ``host_half_strips`` counts schedules *issued* by the front end
    (once per block, independent of ``batch``) while
    ``total_half_strips`` counts schedules *executed* by the sequencer's
    batch-stride address loop.

    Attributes:
        depth: the block depth ``T``.
        batch: batch size ``B``.
        num_blocks: machine passes, ``ceil(iterations / T)``.
        num_exchanges: source halo messages, ``num_blocks * batch``.
        coeff_exchanges: coefficient deep exchanges (once per array
            coefficient; zero at depth 1).
        block_comm: cost of one entry's full-depth deep exchange.
        total_comm_cycles: all exchange cycles over the whole batch.
        total_compute_cycles: node cycles over every entry's every
            sub-iteration.
        total_half_strips: microcode invocations executed (x ``batch``).
        host_half_strips: half-strip schedules issued (NOT x ``batch``).
    """

    depth: int
    batch: int
    num_blocks: int
    num_exchanges: int
    coeff_exchanges: int
    block_comm: CommStats
    total_comm_cycles: int
    total_compute_cycles: int
    total_half_strips: int
    host_half_strips: int

    def modeled_seconds(self, params, iterations: int) -> float:
        """Modeled elapsed wall clock of the whole batched filter run:
        machine cycles plus the front end's per-block fixed cost and
        per-*issued*-half-strip cost."""
        machine = params.seconds(
            self.total_comm_cycles + self.total_compute_cycles
        )
        host = (
            self.num_blocks * params.host_fixed_s
            + self.host_half_strips * params.host_halfstrip_s
        )
        return machine + host


def batch_blocked_costs(
    compiled: CompiledStencil,
    subgrid_shape: Tuple[int, int],
    iterations: int,
    depth: int,
    batch: int,
) -> BatchBlockedCosts:
    """Price one filter of a ``batch``-entry batched run at block depth
    ``depth``.

    ``depth == 1`` reproduces the unblocked batched accounting exactly:
    ``iterations`` machine passes of ``batch`` shallow exchanges each,
    one issued schedule per pass, no coefficient exchanges.
    """
    pattern = compiled.pattern
    params = compiled.params
    coeff_exchanges = (
        len(array_coefficient_names(pattern)) if depth > 1 else 0
    )
    full_stats = deep_exchange_cost(pattern, subgrid_shape, params, depth)
    comm_cycles = coeff_exchanges * full_stats.cycles
    compute_cycles = 0
    half_strips = 0
    num_blocks = 0
    for steps in block_steps(iterations, depth):
        num_blocks += 1
        comm_cycles += batch * deep_exchange_cost(
            pattern, subgrid_shape, params, steps
        ).cycles
        cycles, strips = block_compute_cycles(compiled, subgrid_shape, steps)
        compute_cycles += batch * cycles
        half_strips += strips
    return BatchBlockedCosts(
        depth=depth,
        batch=batch,
        num_blocks=num_blocks,
        num_exchanges=num_blocks * batch,
        coeff_exchanges=coeff_exchanges,
        block_comm=full_stats,
        total_comm_cycles=comm_cycles,
        total_compute_cycles=compute_cycles,
        total_half_strips=batch * half_strips,
        host_half_strips=half_strips,
    )


def best_batch_block_depth(
    compiled: CompiledStencil,
    subgrid_shape: Tuple[int, int],
    iterations: int,
    batch: int,
    max_depth: Optional[int] = None,
    machine=None,
) -> int:
    """The block depth with the lowest modeled elapsed time for one
    filter of a ``batch``-entry batched run.

    Same sweep-and-keep-cheapest shape as :func:`best_block_depth`
    (ties to the shallower depth; rerouted links surcharge every
    exchange), but priced through :func:`batch_blocked_costs`: source
    exchanges scale with ``batch`` while coefficient deep exchanges do
    not, so blocking's break-even point moves earlier as the batch
    grows -- its fixed cost amortizes over every entry.
    """
    cap = depth_cap(compiled.pattern, subgrid_shape, iterations)
    if max_depth is not None:
        cap = min(cap, max_depth)
    pad = compiled.pattern.border_widths().max_width
    best = 1
    best_seconds = None
    for depth in range(1, cap + 1):
        costs = batch_blocked_costs(
            compiled, subgrid_shape, iterations, depth, batch
        )
        seconds = costs.modeled_seconds(compiled.params, iterations)
        penalty = reroute_penalty_cycles(
            machine, subgrid_shape, compiled.params, depth, pad
        )
        if penalty:
            total_exchanges = costs.num_exchanges + costs.coeff_exchanges
            seconds += compiled.params.seconds(penalty * total_exchanges)
        if best_seconds is None or seconds < best_seconds:
            best = depth
            best_seconds = seconds
    return best
