"""Strip mining: dividing a subgrid into strips and half-strips.

Once halo data has arrived, each node's subgrid is partitioned into
vertical strips of width 8, 4, 2 or 1 (the run-time library shaves off,
at each step, the widest strip for which the compiler produced a plan).
Each strip is processed as two half-strips, the basic unit of the
microcode loop; a half-strip sweeps line by line from the edge of the
subgrid toward the center, so its loop handles only one boundary
condition (paper section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..compiler.plan import CompiledStencil, WidthPlan
from ..machine.params import MachineParams
from ..machine.sequencer import HalfStripJob


@dataclass(frozen=True)
class Strip:
    """One strip: ``width`` columns starting at ``x0``, split into two
    half-strips that sweep North from their southern edge."""

    plan: WidthPlan
    x0: int
    half_strips: Tuple[HalfStripJob, HalfStripJob]

    @property
    def width(self) -> int:
        return self.plan.width


def split_rows(rows: int) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """Split ``rows`` into two half-strip (y_start, lines) descriptors.

    The lower half covers rows ``[rows - lower_lines, rows)`` sweeping
    North from the bottom edge; the upper half covers ``[0, upper_lines)``
    sweeping North toward the top edge.  For odd heights the lower half
    takes the extra line.
    """
    upper_lines = rows // 2
    lower_lines = rows - upper_lines
    lower = (rows - 1, lower_lines)
    upper = (upper_lines - 1, upper_lines)
    return lower, upper


class StripSchedule:
    """The full strip decomposition of one subgrid shape."""

    #: Memoized schedules keyed by (compiled-plan identity, subgrid
    #: shape).  A schedule is immutable once built, and iterated or
    #: repeated ``apply_stencil`` calls reuse the same compiled plan, so
    #: rebuilding the decomposition every call is pure overhead.
    _cache: Dict[Tuple[int, Tuple[int, int]], "StripSchedule"] = {}
    _cache_keepalive: Dict[int, CompiledStencil] = {}
    _cache_limit = 256

    @classmethod
    def cached(
        cls, compiled: CompiledStencil, subgrid_shape: Tuple[int, int]
    ) -> "StripSchedule":
        """The memoized schedule for this plan and subgrid shape."""
        key = (id(compiled), subgrid_shape)
        schedule = cls._cache.get(key)
        if schedule is None or schedule.compiled is not compiled:
            if len(cls._cache) >= cls._cache_limit:
                cls._cache.clear()
                cls._cache_keepalive.clear()
            schedule = cls(compiled, subgrid_shape)
            cls._cache[key] = schedule
            # Keep the plan alive so its id() cannot be recycled while
            # the cache entry exists.
            cls._cache_keepalive[id(compiled)] = compiled
        return schedule

    def __init__(
        self, compiled: CompiledStencil, subgrid_shape: Tuple[int, int]
    ) -> None:
        self.compiled = compiled
        self.subgrid_shape = subgrid_shape
        rows, cols = subgrid_shape
        if rows < 1 or cols < 1:
            raise ValueError(f"degenerate subgrid shape {subgrid_shape}")
        self.strips: List[Strip] = []
        x0 = 0
        (lower, upper) = split_rows(rows)
        for width in compiled.strip_widths(cols):
            plan = compiled.plans[width]
            jobs = tuple(
                HalfStripJob(x0=x0, y_start=y_start, lines=lines)
                for (y_start, lines) in (lower, upper)
                if lines > 0
            )
            if len(jobs) == 1:
                jobs = (jobs[0], HalfStripJob(x0=x0, y_start=0, lines=0))
            self.strips.append(Strip(plan=plan, x0=x0, half_strips=jobs))
            x0 += width

    @property
    def num_strips(self) -> int:
        return len(self.strips)

    @property
    def num_half_strips(self) -> int:
        return sum(
            1
            for strip in self.strips
            for job in strip.half_strips
            if job.lines > 0
        )

    def widths(self) -> List[int]:
        return [strip.width for strip in self.strips]

    def jobs(self) -> Iterator[Tuple[WidthPlan, HalfStripJob]]:
        for strip in self.strips:
            for job in strip.half_strips:
                if job.lines > 0:
                    yield strip.plan, job

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def compute_cycles(self, params: MachineParams) -> int:
        """Closed-form node cycles to process the whole subgrid.

        Exact: tests assert equality with the cycle-stepped simulator.
        """
        total = 0
        for strip in self.strips:
            total += params.strip_setup_cycles
            for job in strip.half_strips:
                total += strip.plan.half_strip_cycles(job.lines, params)
        return total

    def describe(self) -> str:
        rows, cols = self.subgrid_shape
        widths = "+".join(str(width) for width in self.widths())
        return (
            f"{rows}x{cols} subgrid as strips [{widths}], "
            f"{self.num_half_strips} half-strips"
        )
