"""Distributed Connection Machine arrays.

A :class:`CMArray` is a named, 2-D, single-precision array block-divided
over the machine's node grid.  The whole array is backed by one stacked
``(grid_rows, grid_cols, rows, cols)`` float32 machine buffer; each
node's subgrid lives in that node's
:class:`~repro.machine.memory.NodeMemory` as a *view* of the stack under
the array's name, which is how the sequencer's address generation finds
it.  Per-node access (exact mode, host scatter/gather) and batched
whole-machine access (the fast executor, the batched halo exchange)
therefore observe the same storage.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..machine.machine import CM2
from .decomposition import Decomposition


class CMArray:
    """A named distributed array."""

    def __init__(
        self,
        name: str,
        machine: CM2,
        global_shape: Tuple[int, int],
    ) -> None:
        self.name = name
        self.machine = machine
        self.decomposition = Decomposition(global_shape, machine)
        self._stacked = machine.alloc_stacked(
            name, self.decomposition.subgrid_shape
        )

    @property
    def global_shape(self) -> Tuple[int, int]:
        return self.decomposition.global_shape

    @property
    def subgrid_shape(self) -> Tuple[int, int]:
        return self.decomposition.subgrid_shape

    @property
    def stacked(self) -> np.ndarray:
        """The whole-machine ``(grid_rows, grid_cols, rows, cols)`` stack."""
        return self._stacked

    # ------------------------------------------------------------------
    # Host <-> machine data movement
    # ------------------------------------------------------------------

    @classmethod
    def from_numpy(
        cls, name: str, machine: CM2, array: np.ndarray
    ) -> "CMArray":
        """Create a distributed array from host data (scatter)."""
        cm_array = cls(name, machine, tuple(array.shape))
        cm_array.set(array)
        return cm_array

    def set(self, array: np.ndarray) -> None:
        """Scatter host data into the node subgrids."""
        array = np.asarray(array, dtype=np.float32)
        if tuple(array.shape) != self.global_shape:
            raise ValueError(
                f"array shape {array.shape} does not match the "
                f"decomposition's global shape {self.global_shape}"
            )
        grid_rows, grid_cols = self.machine.shape
        rows, cols = self.subgrid_shape
        self._stacked[...] = array.reshape(
            grid_rows, rows, grid_cols, cols
        ).swapaxes(1, 2)

    def fill(self, value: float) -> None:
        self._stacked[...] = np.float32(value)

    def to_numpy(self) -> np.ndarray:
        """Gather the node subgrids into a host array."""
        subgrids = {
            node.coord: node.memory.buffer(self.name)
            for node in self.machine.nodes()
        }
        return self.decomposition.gather(subgrids)

    # ------------------------------------------------------------------
    # Node-local views
    # ------------------------------------------------------------------

    def subgrid(self, row: int, col: int) -> np.ndarray:
        """Direct view of the node-(row, col) subgrid buffer."""
        return self.machine.node(row, col).memory.buffer(self.name)

    def like(self, name: str) -> "CMArray":
        """A new zero-filled array with the same shape and machine."""
        return CMArray(name, self.machine, self.global_shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows, cols = self.global_shape
        return f"CMArray({self.name!r}, {rows}x{cols})"
