"""Distributed Connection Machine arrays.

A :class:`CMArray` is a named, 2-D, single-precision array block-divided
over the machine's node grid; each node's subgrid lives in that node's
:class:`~repro.machine.memory.NodeMemory` under the array's name, which
is how the sequencer's address generation finds it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..machine.machine import CM2
from .decomposition import Decomposition


class CMArray:
    """A named distributed array."""

    def __init__(
        self,
        name: str,
        machine: CM2,
        global_shape: Tuple[int, int],
    ) -> None:
        self.name = name
        self.machine = machine
        self.decomposition = Decomposition(global_shape, machine)
        for node in machine.nodes():
            node.memory.allocate(name, self.decomposition.subgrid_shape)

    @property
    def global_shape(self) -> Tuple[int, int]:
        return self.decomposition.global_shape

    @property
    def subgrid_shape(self) -> Tuple[int, int]:
        return self.decomposition.subgrid_shape

    # ------------------------------------------------------------------
    # Host <-> machine data movement
    # ------------------------------------------------------------------

    @classmethod
    def from_numpy(
        cls, name: str, machine: CM2, array: np.ndarray
    ) -> "CMArray":
        """Create a distributed array from host data (scatter)."""
        cm_array = cls(name, machine, tuple(array.shape))
        cm_array.set(array)
        return cm_array

    def set(self, array: np.ndarray) -> None:
        """Scatter host data into the node subgrids."""
        subgrids = self.decomposition.scatter(np.asarray(array))
        for node in self.machine.nodes():
            node.memory.install(self.name, subgrids[node.coord])

    def fill(self, value: float) -> None:
        for node in self.machine.nodes():
            node.memory.buffer(self.name)[:] = np.float32(value)

    def to_numpy(self) -> np.ndarray:
        """Gather the node subgrids into a host array."""
        subgrids = {
            node.coord: node.memory.buffer(self.name)
            for node in self.machine.nodes()
        }
        return self.decomposition.gather(subgrids)

    # ------------------------------------------------------------------
    # Node-local views
    # ------------------------------------------------------------------

    def subgrid(self, row: int, col: int) -> np.ndarray:
        """Direct view of the node-(row, col) subgrid buffer."""
        return self.machine.node(row, col).memory.buffer(self.name)

    def like(self, name: str) -> "CMArray":
        """A new zero-filled array with the same shape and machine."""
        return CMArray(name, self.machine, self.global_shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows, cols = self.global_shape
        return f"CMArray({self.name!r}, {rows}x{cols})"
