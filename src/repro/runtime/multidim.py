"""Multidimensional arrays: the run-time library's outer iteration.

The paper's run-time library "provides the outer loop structure for
strip-mining and for handling multidimensional arrays" (section 1).
This module supplies that outer structure for rank-3 arrays: the first
two dimensions are block-decomposed over the node grid exactly as in
Figure 1, the third dimension is a node-local *depth* axis, and a 3-D
stencil application loops plane by plane, running the full 2-D
machinery (halo exchange, strip mining, compiled plans) on each slab.

Depth-direction taps -- e.g. the out-of-plane neighbors of a 7-point 3-D
Laplacian -- compose with the fusion extension: a tap at depth offset
``dz`` is an extra term whose source is the slab ``dz`` planes away.
The compiled register access patterns bake buffer names, so the runtime
points stable alias names (one per depth offset) at the correct slab
before processing each plane, the software analogue of the sequencer's
run-time base-address parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..compiler.codegen import ExtraTerm
from ..compiler.fusion import FusedStencil, fuse
from ..compiler.plan import CompiledStencil
from ..machine.machine import CM2
from ..machine.params import MachineParams
from ..stencil.offsets import BoundaryMode
from ..stencil.pattern import Coefficient, StencilPattern
from .cm_array import CMArray
from .stencil_op import StencilRun, apply_stencil


def slab_name(name: str, k: int) -> str:
    return f"{name}__k{k}__"


def depth_alias(dz: int) -> str:
    """The stable buffer alias for the slab at depth offset ``dz``."""
    sign = "p" if dz >= 0 else "m"
    return f"__slab_{sign}{abs(dz)}__"


#: Per-node buffer of zeros used when a FILL depth boundary runs off the
#: end of the depth axis.
ZERO_SLAB = "__zero_slab__"


@dataclass(frozen=True)
class DepthTap:
    """An out-of-plane stencil term: ``coeff * x[i, j, k + dz]``."""

    dz: int
    coeff: Coefficient

    def __post_init__(self) -> None:
        if self.dz == 0:
            raise ValueError(
                "a depth tap with dz=0 is an in-plane tap; put it in the "
                "base pattern"
            )


class CMArray3D:
    """A rank-3 distributed array: decomposed planes stacked in depth."""

    def __init__(
        self,
        name: str,
        machine: CM2,
        global_shape: Tuple[int, int, int],
    ) -> None:
        rows, cols, depth = global_shape
        if depth < 1:
            raise ValueError(f"depth must be positive, got {depth}")
        self.name = name
        self.machine = machine
        self.global_shape = (rows, cols, depth)
        self.slabs: List[CMArray] = [
            CMArray(slab_name(name, k), machine, (rows, cols))
            for k in range(depth)
        ]

    @property
    def depth(self) -> int:
        return self.global_shape[2]

    @property
    def plane_shape(self) -> Tuple[int, int]:
        return self.global_shape[:2]

    @property
    def subgrid_shape(self) -> Tuple[int, int]:
        return self.slabs[0].subgrid_shape

    @classmethod
    def from_numpy(
        cls, name: str, machine: CM2, array: np.ndarray
    ) -> "CMArray3D":
        if array.ndim != 3:
            raise ValueError(f"expected a rank-3 array, got rank {array.ndim}")
        out = cls(name, machine, tuple(array.shape))
        out.set(array)
        return out

    def set(self, array: np.ndarray) -> None:
        if tuple(array.shape) != self.global_shape:
            raise ValueError(
                f"array shape {array.shape} != {self.global_shape}"
            )
        for k, slab in enumerate(self.slabs):
            slab.set(array[:, :, k])

    def to_numpy(self) -> np.ndarray:
        rows, cols, depth = self.global_shape
        out = np.zeros((rows, cols, depth), dtype=np.float32)
        for k, slab in enumerate(self.slabs):
            out[:, :, k] = slab.to_numpy()
        return out

    def slab(self, k: int) -> CMArray:
        return self.slabs[k]

    def like(self, name: str) -> "CMArray3D":
        return CMArray3D(name, self.machine, self.global_shape)


@dataclass
class Stencil3DRun:
    """Aggregate accounting for one rank-3 stencil application."""

    result: CMArray3D
    params: MachineParams
    num_nodes: int
    compute_cycles: int = 0
    comm_cycles: int = 0
    host_seconds: float = 0.0
    useful_flops: int = 0

    @property
    def elapsed_seconds(self) -> float:
        return (
            self.params.seconds(self.compute_cycles + self.comm_cycles)
            + self.host_seconds
        )

    @property
    def mflops(self) -> float:
        return self.useful_flops / self.elapsed_seconds / 1e6

    @property
    def gflops(self) -> float:
        return self.mflops / 1e3


def compile_3d(
    pattern: StencilPattern,
    depth_taps: Sequence[DepthTap] = (),
    params: Optional[MachineParams] = None,
) -> Union[CompiledStencil, FusedStencil]:
    """Compile a 3-D stencil: an in-plane pattern plus depth taps.

    With no depth taps this is an ordinary 2-D compilation applied slab
    by slab; with depth taps, one fused compilation whose extra-term
    sources are the depth-offset aliases.
    """
    from ..compiler.driver import compile_stencil

    params = params or MachineParams()
    if not depth_taps:
        return compile_stencil(pattern, params)
    seen = set()
    for tap in depth_taps:
        if tap.dz in seen:
            raise ValueError(f"duplicate depth offset {tap.dz}")
        seen.add(tap.dz)
    terms = [
        ExtraTerm(source=depth_alias(tap.dz), coeff=tap.coeff)
        for tap in depth_taps
    ]
    return fuse(pattern, terms, params)


def apply_stencil_3d(
    compiled: Union[CompiledStencil, FusedStencil],
    source: CMArray3D,
    coefficients: Optional[Dict[str, CMArray3D]] = None,
    result: Union[CMArray3D, str, None] = None,
    *,
    depth_taps: Sequence[DepthTap] = (),
    depth_boundary: BoundaryMode = BoundaryMode.CIRCULAR,
    iterations: int = 1,
    exact: bool = False,
) -> Stencil3DRun:
    """Apply a (possibly depth-fused) stencil to a rank-3 array.

    The outer loop runs plane by plane; before each plane the depth
    aliases are pointed at the neighboring slabs (wrapping or
    zero-filled at the depth boundary per ``depth_boundary``).

    Coefficient arrays are rank-3: each plane streams its own slab.
    """
    machine = source.machine
    params = compiled.params
    coefficients = coefficients or {}
    if result is None:
        result = compiled.pattern.result
    if isinstance(result, str):
        result = CMArray3D(result, machine, source.global_shape)
    depth = source.depth
    _ensure_zero_slab(machine, source.subgrid_shape)

    run = Stencil3DRun(
        result=result, params=params, num_nodes=machine.num_nodes
    )
    for k in range(depth):
        _point_depth_aliases(
            machine, source, k, depth_taps, depth_boundary
        )
        # The compiled patterns stream coefficients by statement name
        # ("C1", ...); apply_stencil's scoped bindings point those names
        # at plane k's slabs, as the real sequencer would take fresh
        # base addresses.
        slab_coeffs = {
            name: arrays.slab(k) for name, arrays in coefficients.items()
        }
        slab_run: StencilRun = apply_stencil(
            compiled,
            source.slab(k),
            slab_coeffs,
            result.slab(k),
            iterations=1,
            exact=exact,
        )
        run.compute_cycles += slab_run.compute_cycles
        run.comm_cycles += slab_run.comm.cycles
        run.host_seconds += slab_run.host_seconds_per_iteration
        run.useful_flops += (
            slab_run.useful_flops_per_node_per_iteration * machine.num_nodes
        )
    if iterations > 1:
        run.compute_cycles *= iterations
        run.comm_cycles *= iterations
        run.host_seconds *= iterations
        run.useful_flops *= iterations
    return run


def _ensure_zero_slab(machine: CM2, subgrid_shape: Tuple[int, int]) -> None:
    stack = machine.stacked(ZERO_SLAB)
    if stack is None or stack.shape[2:] != subgrid_shape:
        machine.alloc_stacked(ZERO_SLAB, subgrid_shape)


def _point_depth_aliases(
    machine: CM2,
    source: CMArray3D,
    k: int,
    depth_taps: Sequence[DepthTap],
    depth_boundary: BoundaryMode,
) -> None:
    depth = source.depth
    for tap in depth_taps:
        target_k = k + tap.dz
        if depth_boundary is BoundaryMode.CIRCULAR:
            target = slab_name(source.name, target_k % depth)
        elif 0 <= target_k < depth:
            target = slab_name(source.name, target_k)
        else:
            target = ZERO_SLAB
        machine.alias_stacked(depth_alias(tap.dz), target)


# ----------------------------------------------------------------------
# The 27-point 3-D Laplacian: the batched runtime's headline workload
# ----------------------------------------------------------------------
#
# The compact 27-point Laplacian decomposes by z-plane into three 3x3
# in-plane squares (gallery.laplacian27_below/mid/above):
#
#     R[:, :, k] = L_below(X[:, :, k-1]) + L_mid(X[:, :, k])
#                + L_above(X[:, :, k+1])
#
# which is exactly the batched multi-convolution shape: every slab needs
# every plane filter, so one apply_stencil_batch call with B = depth
# grids and F = 3 filters computes all 3*depth plane convolutions with
# one shared halo exchange per iteration -- against 3*depth exchanges
# for the plane-by-plane loop.


def laplacian27_filters(params: Optional[MachineParams] = None):
    """The three compiled plane filters of the 27-point Laplacian, in
    ``dz`` order (-1, 0, +1)."""
    from ..compiler.driver import compile_stencil
    from ..stencil.gallery import (
        laplacian27_above,
        laplacian27_below,
        laplacian27_mid,
    )

    params = params or MachineParams()
    return tuple(
        compile_stencil(pattern, params)
        for pattern in (
            laplacian27_below(),
            laplacian27_mid(),
            laplacian27_above(),
        )
    )


def apply_laplacian27_reference(
    source: CMArray3D,
    result: Union[CMArray3D, str, None] = None,
    *,
    params: Optional[MachineParams] = None,
) -> CMArray3D:
    """The plane-by-plane 27-point Laplacian (circular in depth).

    Applies each plane filter to each slab with solo ``apply_stencil``
    calls and combines the three terms per output plane with float32
    adds in ``dz`` order.  The oracle the batched variant is checked
    against bit for bit.
    """
    machine = source.machine
    filters = laplacian27_filters(params)
    if result is None:
        result = "LAP27"
    if isinstance(result, str):
        result = CMArray3D(result, machine, source.global_shape)
    depth = source.depth
    terms = np.zeros(
        (depth, 3) + source.plane_shape, dtype=np.float32
    )
    scratch = CMArray("__lap27_ref__", machine, source.plane_shape)
    for k in range(depth):
        for fi, compiled in enumerate(filters):
            apply_stencil(compiled, source.slab(k), None, scratch)
            terms[k, fi] = scratch.to_numpy()
    for k in range(depth):
        acc = terms[(k - 1) % depth, 0].copy()
        np.add(acc, terms[k, 1], out=acc)
        np.add(acc, terms[(k + 1) % depth, 2], out=acc)
        result.slab(k).set(acc)
    return result


def apply_laplacian27(
    source: CMArray3D,
    result: Union[CMArray3D, str, None] = None,
    *,
    params: Optional[MachineParams] = None,
    tenant: Optional[str] = None,
):
    """The batched 27-point Laplacian: one multi-convolution call.

    All ``depth`` slabs and all three plane filters go through a single
    :func:`~repro.runtime.batch.apply_stencil_batch` (one shared halo
    exchange serves every plane convolution), then each output plane
    combines its three terms with the same float32 adds, in the same
    ``dz`` order, as :func:`apply_laplacian27_reference` -- the two are
    bit-identical.

    Returns ``(result, run)`` where ``run`` is the underlying
    :class:`~repro.runtime.batch.BatchStencilRun`.
    """
    from .batch import CMBatch, apply_stencil_batch

    machine = source.machine
    filters = laplacian27_filters(params)
    if result is None:
        result = "LAP27"
    if isinstance(result, str):
        result = CMArray3D(result, machine, source.global_shape)
    depth = source.depth
    slabs = np.moveaxis(source.to_numpy(), 2, 0)  # (depth, rows, cols)
    batch_source = CMBatch.from_numpy(
        "__lap27_slabs__", machine, np.ascontiguousarray(slabs)
    )
    run = apply_stencil_batch(
        filters, batch_source, result="__lap27_terms__", tenant=tenant
    )
    terms = run.result.to_numpy()  # (depth, 3, rows, cols)
    for k in range(depth):
        acc = terms[(k - 1) % depth, 0].copy()
        np.add(acc, terms[k, 1], out=acc)
        np.add(acc, terms[(k + 1) % depth, 2], out=acc)
        result.slab(k).set(acc)
    return result, run
