"""Callable wrappers: compiled stencils as ordinary functions.

The paper's first version produced "an ordinary Lisp function named
cross that takes Connection Machine arrays as arguments and performs
the indicated computation"; the second version produced a compiled
Fortran subroutine callable from the rest of the program.  These
factories reproduce both calling conventions: the returned Python
callable takes distributed arrays positionally, in the declared
argument order, runs the compiled stencil, and returns the run's
accounting.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..compiler.driver import compile_stencil
from ..compiler.plan import CompiledStencil
from ..fortran.parser import parse_subroutine
from ..fortran.recognizer import recognize_subroutine
from ..lisp.defstencil import parse_defstencil, parse_defstencil_with_types
from ..lisp.sexpr import Symbol, read
from ..machine.params import MachineParams
from .cm_array import CMArray
from .stencil_op import StencilRun, apply_stencil


class StencilFunction:
    """A compiled stencil with a positional calling convention.

    Attributes:
        name: the subroutine/defstencil name.
        parameters: the declared argument names, in order.
        compiled: the underlying compiled stencil.
    """

    def __init__(
        self,
        name: str,
        parameters: Sequence[str],
        compiled: CompiledStencil,
    ) -> None:
        pattern = compiled.pattern
        needed = {pattern.result, pattern.source}
        needed.update(pattern.coefficient_names())
        missing = needed - set(parameters)
        if missing:
            raise ValueError(
                f"{name}: statement references {sorted(missing)} which are "
                f"not among the arguments {list(parameters)}"
            )
        self.name = name
        self.parameters = tuple(parameters)
        self.compiled = compiled

    def __call__(self, *arrays: CMArray) -> StencilRun:
        """Execute the stencil: ``cross(r, x, c1, c2, ...)``.

        Arguments bind positionally to the declared parameter names; the
        arrays may carry any storage names.
        """
        if len(arrays) != len(self.parameters):
            raise TypeError(
                f"{self.name}() takes {len(self.parameters)} arrays "
                f"({', '.join(self.parameters)}); got {len(arrays)}"
            )
        bound: Dict[str, CMArray] = dict(zip(self.parameters, arrays))
        pattern = self.compiled.pattern
        result = bound[pattern.result]
        source = bound[pattern.source]
        coefficients = {
            coeff_name: bound[coeff_name]
            for coeff_name in pattern.coefficient_names()
        }
        return apply_stencil(self.compiled, source, coefficients, result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<stencil function {self.name}({', '.join(self.parameters)})>"
        )


def make_subroutine(
    source: str, params: Optional[MachineParams] = None
) -> StencilFunction:
    """Version-2 behaviour: compile an isolated Fortran stencil
    subroutine into a callable."""
    subroutine = parse_subroutine(source)
    pattern = recognize_subroutine(subroutine)
    compiled = compile_stencil(pattern, params)
    return StencilFunction(
        name=subroutine.name.lower(),
        parameters=subroutine.params,
        compiled=compiled,
    )


def make_stencil_function(
    source: str, params: Optional[MachineParams] = None
) -> StencilFunction:
    """Version-1 behaviour: ``defstencil`` yields an ordinary function
    that takes Connection Machine arrays as arguments."""
    try:
        pattern = parse_defstencil_with_types(source)
    except Exception:
        pattern = parse_defstencil(source)
    form = read(source)
    arg_forms = form[2]
    parameters = [
        symbol.name for symbol in arg_forms if isinstance(symbol, Symbol)
    ]
    compiled = compile_stencil(pattern, params)
    return StencilFunction(
        name=pattern.name or "stencil",
        parameters=parameters,
        compiled=compiled,
    )
