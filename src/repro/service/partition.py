"""The machine pool: one physical node grid carved among tenants.

The pool owns the parent machine's geometry -- its node grid, and the
rows reserved as the service spare pool -- and hands out
:class:`~repro.machine.geometry.Partition` rectangles under a placement
policy.  Because every admissible rectangle is one tile of a regular
tiling (validated by ``Partition.validate``), admitted partitions pack
without gaps or overlaps by construction; the pool only has to track
which tiles are lent out, and which reserved spare nodes are currently
backing tenants' fault-tolerance.

Two placement policies:

``first_fit``
    The first free aligned tile in row-major order -- cheap,
    deterministic, and what the paper-era batch queues did.

``best_fit``
    The free aligned tile with the most occupied/reserved/boundary
    cells touching its perimeter -- packs tenants tightly so the
    largest possible contiguous rectangle stays free for big arrivals.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ..machine.geometry import (
    Partition,
    PartitionError,
    grid_shape,
    is_power_of_two,
)
from ..machine.machine import CM2
from ..machine.params import MachineParams
from ..verify import lockdep
from .jobs import partition_machine

#: Placement policies ``acquire`` understands.
POLICIES = ("first_fit", "best_fit")


class MachinePool:
    """The parent node grid, its spare reservation, and the free map.

    Lock discipline: the free map (``_occupied``, ``_spares_lent``) is
    guarded by ``_lock``; geometry (``shape``, ``reserved``) is frozen
    at construction and read lock-free.  The pool never calls other
    locked subsystems -- a leaf of the service lock graph, safe to
    call while holding the scheduler's condition lock.
    """

    def __init__(
        self,
        params: Optional[MachineParams] = None,
        shape: Optional[Tuple[int, int]] = None,
        *,
        spare_rows: int = 0,
        default_partition: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.params = params or MachineParams()
        if shape is None:
            shape = grid_shape(self.params.num_nodes)
        rows, cols = shape
        if rows * cols != self.params.num_nodes:
            raise PartitionError(
                f"pool grid {shape} does not hold "
                f"{self.params.num_nodes} nodes"
            )
        if not (is_power_of_two(rows) and is_power_of_two(cols)):
            raise PartitionError(
                f"pool grid extents must be powers of two, got {shape}"
            )
        if not 0 <= spare_rows < rows:
            raise PartitionError(
                f"spare_rows must leave at least one working row, "
                f"got {spare_rows} of {rows}"
            )
        self.shape: Tuple[int, int] = (rows, cols)
        #: Parent coordinates reserved as the service spare pool: the
        #: bottom ``spare_rows`` rows, never handed to a tenant.
        self.reserved = frozenset(
            (r, c) for r in range(rows - spare_rows, rows) for c in range(cols)
        )
        if default_partition is None:
            default_partition = self._default_tile(spare_rows)
        self.default_partition: Tuple[int, int] = tuple(default_partition)
        self._lock = lockdep.rlock("MachinePool._lock")
        self._occupied: List[Partition] = []  # guarded-by: _lock
        self._spares_lent = 0  # guarded-by: _lock

    def _default_tile(self, spare_rows: int) -> Tuple[int, int]:
        """A sensible default partition: quarters of a fully free grid
        (several tenants fit at once -- the service's raison d'etre), or
        the tallest power-of-two row band clearing the reservation."""
        rows, cols = self.shape
        if spare_rows == 0:
            return (max(1, rows // 2), max(1, cols // 2))
        tile_rows = 1
        while tile_rows * 2 <= rows - spare_rows:
            tile_rows *= 2
        return (tile_rows, max(1, cols // 2))

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------

    @property
    def num_reserved(self) -> int:
        return len(self.reserved)

    @property
    def spares_free(self) -> int:
        with self._lock:
            return self.num_reserved - self._spares_lent

    @property
    def occupied(self) -> Tuple[Partition, ...]:
        with self._lock:
            return tuple(self._occupied)

    def capacity(self, shape: Tuple[int, int]) -> int:
        """How many ``shape`` tiles the pool can host at once."""
        return len(self._candidates(self._check_shape(shape)))

    def _check_shape(self, shape: Tuple[int, int]) -> Tuple[int, int]:
        """Raise :class:`PartitionError` when ``shape`` can never fit."""
        probe = Partition(self.shape, (0, 0), tuple(shape), self.reserved)
        # Validates extents, powers of two, and tiling; origin (0, 0) is
        # always aligned.  Reserved overlap at (0, 0) is not fatal --
        # another tile may clear it -- so retry candidates below.
        try:
            probe.validate()
        except PartitionError as error:
            if not error.overlap:
                raise
        if not self._candidates(tuple(shape)):
            raise PartitionError(
                f"no {shape[0]}x{shape[1]} tile of the "
                f"{self.shape[0]}x{self.shape[1]} grid clears the "
                f"{self.num_reserved}-node spare reservation"
            )
        return tuple(shape)

    def _candidates(self, shape: Tuple[int, int]) -> List[Partition]:
        """Every aligned tile of ``shape`` clear of the reservation."""
        rows, cols = self.shape
        out = []
        for orow in range(0, rows, shape[0]):
            for ocol in range(0, cols, shape[1]):
                tile = Partition(self.shape, (orow, ocol), shape, self.reserved)
                try:
                    tile.validate()
                except PartitionError:
                    continue
                out.append(tile)
        return out

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------

    def _packing_score(self, tile: Partition) -> int:  # guarded-by: _lock
        """How many perimeter-adjacent cells are unavailable (occupied,
        reserved, or off-grid) -- best-fit packs where this is highest."""
        rows, cols = self.shape
        taken = set(self.reserved)
        for other in self._occupied:
            taken.update(other.coords())
        body = set(tile.coords())
        score = 0
        for (r, c) in body:
            for nr, nc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
                if (nr, nc) in body:
                    continue
                if not (0 <= nr < rows and 0 <= nc < cols):
                    score += 1
                elif (nr, nc) in taken:
                    score += 1
        return score

    def acquire(
        self,
        shape: Optional[Tuple[int, int]] = None,
        *,
        spares: int = 0,
        policy: str = "first_fit",
    ) -> Optional[Tuple[Partition, CM2]]:
        """Carve out a tile and build its machine, or None when busy.

        Raises :class:`PartitionError` for requests that can *never* be
        satisfied (shape does not tile the grid, every tile hits the
        reservation, more spares than the pool reserves) -- the caller
        fails the job instead of queueing it forever.  Returns None when
        the request is legal but currently unsatisfiable (tiles or
        spares all lent out) -- the caller queues and retries on
        release.
        """
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        shape = self._check_shape(shape or self.default_partition)
        if spares > self.num_reserved:
            raise PartitionError(
                f"job wants {spares} spare nodes but the pool reserves "
                f"only {self.num_reserved}"
            )
        with self._lock:
            if spares > self.num_reserved - self._spares_lent:
                return None
            free = [
                tile
                for tile in self._candidates(shape)
                if not any(tile.overlaps(held) for held in self._occupied)
            ]
            if not free:
                return None
            if policy == "best_fit":
                tile = max(free, key=self._packing_score)
            else:
                tile = free[0]
            self._occupied.append(tile)
            self._spares_lent += spares
            machine = partition_machine(self.params, tile, spares=spares)
            return tile, machine

    def release(self, tile: Partition, *, spares: int = 0) -> None:
        """Return a tile (and its lent spares) to the pool."""
        with self._lock:
            try:
                self._occupied.remove(tile)
            except ValueError:
                raise PartitionError(
                    f"releasing a tile the pool never lent: {tile.describe()}"
                ) from None
            self._spares_lent -= spares

    def describe(self) -> str:
        rows, cols = self.shape
        with self._lock:
            return (
                f"pool: {rows}x{cols} node grid, "
                f"{len(self._occupied)} partitions lent, "
                f"{self.num_reserved - self._spares_lent}/"
                f"{self.num_reserved} spare nodes free"
            )
