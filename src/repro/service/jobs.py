"""Stencil jobs: the unit of work the service schedules.

A :class:`StencilJob` is a self-contained, deterministic description of
one tenant's stencil run: the gallery pattern, the boundary mode, the
global grid, the iteration count, and the knobs (`block_depth`, `exact`,
fault injection) -- everything :func:`execute_job` needs to reproduce
the run bit for bit on any machine of the right node-grid shape.  The
input data is derived from the job's seed, so a job run through the
scheduler on a carved-out partition and the same job run solo on a
private machine must produce bit-identical float32 results; the service
test suite and ``repro serve`` both enforce exactly that.
"""

from __future__ import annotations

import base64
import hashlib
import time
from dataclasses import dataclass, field, fields
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

from ..analysis.chaos import boundary_variant
from ..compiler.driver import compile_stencil
from ..machine.geometry import Partition
from ..machine.machine import CM2
from ..machine.params import MachineParams
from ..runtime.cm_array import CMArray
from ..runtime.faults import (
    FaultError,
    FaultInjector,
    FaultStats,
    ResiliencePolicy,
)
from ..runtime.stencil_op import StencilRun, apply_stencil
from ..stencil import gallery
from .errors import JobFaultError

#: Boundary modes a job may name.
BOUNDARIES = ("torus", "fill")


class JobSpecError(ValueError):
    """A job description that can never run (bad pattern, geometry...)."""


@dataclass(frozen=True)
class StencilJob:
    """One tenant's stencil run, fully determined by its fields.

    Attributes:
        tenant: the owning tenant's id (scopes accounting and cache
            telemetry, never results).
        pattern: a gallery pattern name (``cross5``, ``square9``, ...).
        grid_shape: the global array shape; must divide evenly over the
            partition's node grid (SIMD identical subgrids).
        boundary: ``"torus"`` (CSHIFT) or ``"fill"`` (EOSHIFT).
        iterations: how many times the stencil is applied.
        priority: admission priority; higher runs first among waiting
            jobs (ties break by submission order).
        partition_shape: the node-grid rectangle this job wants; None
            takes the pool's default.
        seed: derives the input and coefficient data deterministically.
        block_depth: temporal blocking depth (int or ``"auto"``).
        exact: run the cycle-stepped datapath instead of the fast path.
        spares: spare nodes the job's machine is armed with (lent from
            the pool's reservation for the job's lifetime).
        fault_rates: per-exchange fault-injection rates for chaos jobs
            (a mapping, stored canonically); empty/None runs unguarded.
        fault_seed: the injector seed for chaos jobs.
        abft: arm algorithm-based fault tolerance: row/column checksum
            seals over the job's result stack, verified every iteration
            with single-word corruption forward-corrected in place (see
            :mod:`repro.runtime.abft`).  Required when ``fault_rates``
            includes ``"sdc"`` -- silent corruption with no detector
            would void the service's bit-identity contract.
        label: optional display name; defaults to a description.
        batch: independent input grids to run in one batched machine
            pass (1 = the classic solo job).
        filters: gallery pattern names to apply to every grid of the
            batch; None applies just ``pattern``.  Setting either
            ``batch > 1`` or ``filters`` routes the job through
            :func:`~repro.runtime.batch.apply_stencil_batch`.
    """

    tenant: str
    pattern: str = "cross5"
    grid_shape: Tuple[int, int] = (32, 32)
    boundary: str = "torus"
    iterations: int = 1
    priority: int = 0
    partition_shape: Optional[Tuple[int, int]] = None
    seed: int = 0
    block_depth: Union[int, str] = 1
    exact: bool = False
    spares: int = 0
    fault_rates: Optional[Tuple[Tuple[str, float], ...]] = None
    fault_seed: int = 1
    abft: bool = False
    label: str = ""
    batch: int = 1
    filters: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise JobSpecError("a job needs a tenant id")
        if not hasattr(gallery, self.pattern):
            raise JobSpecError(
                f"unknown gallery pattern {self.pattern!r} "
                f"(try `python -m repro gallery`)"
            )
        if self.boundary not in BOUNDARIES:
            raise JobSpecError(
                f"boundary must be one of {BOUNDARIES}, got {self.boundary!r}"
            )
        if self.iterations < 1:
            raise JobSpecError("iterations must be positive")
        if self.spares < 0:
            raise JobSpecError("spares must be non-negative")
        rows, cols = self.grid_shape
        if rows < 1 or cols < 1:
            raise JobSpecError(f"bad grid shape {self.grid_shape}")
        object.__setattr__(self, "grid_shape", (int(rows), int(cols)))
        if self.partition_shape is not None:
            pr, pc = self.partition_shape
            object.__setattr__(self, "partition_shape", (int(pr), int(pc)))
        if self.batch < 1:
            raise JobSpecError(
                f"batch must be >= 1, got {self.batch}"
            )
        if self.filters is not None:
            names = tuple(str(name) for name in self.filters)
            if not names:
                raise JobSpecError(
                    "filters must name at least one gallery pattern "
                    "(or be omitted)"
                )
            for name in names:
                if not hasattr(gallery, name):
                    raise JobSpecError(
                        f"unknown gallery pattern {name!r} in filters "
                        f"(try `python -m repro gallery`)"
                    )
            object.__setattr__(self, "filters", names)
        if self.batched and self.spares > 0:
            raise JobSpecError(
                "batched jobs cannot arm spare nodes: the batched "
                "working set has no per-node views to migrate"
            )
        if isinstance(self.fault_rates, Mapping):
            object.__setattr__(
                self,
                "fault_rates",
                tuple(sorted((str(k), float(v)) for k, v in self.fault_rates.items())),
            )
        if not self.abft and any(
            kind == "sdc" and rate > 0
            for kind, rate in (self.fault_rates or ())
        ):
            raise JobSpecError(
                "fault_rates includes 'sdc' but abft is False: silent "
                "corruption needs the ABFT verifier; set abft=true on "
                "the job (or drop the sdc rate)"
            )
        if not self.label:
            object.__setattr__(self, "label", self.describe())

    @property
    def guarded(self) -> bool:
        return bool(self.fault_rates) or self.spares > 0 or self.abft

    @property
    def batched(self) -> bool:
        """Whether this job runs the batched multi-convolution path."""
        return self.batch > 1 or self.filters is not None

    def describe(self) -> str:
        rows, cols = self.grid_shape
        if self.batched:
            names = "+".join(self.filter_names)
            return (
                f"{self.tenant}/{names}/{self.boundary} "
                f"{rows}x{cols} b{self.batch} x{self.iterations}"
            )
        return (
            f"{self.tenant}/{self.pattern}/{self.boundary} "
            f"{rows}x{cols} x{self.iterations}"
        )

    @property
    def filter_names(self) -> Tuple[str, ...]:
        """The gallery names this job applies (always at least one)."""
        return self.filters if self.filters is not None else (self.pattern,)

    def build_pattern(self):
        """The gallery pattern under this job's boundary mode."""
        return boundary_variant(getattr(gallery, self.pattern)(), self.boundary)

    def build_filters(self):
        """Every filter pattern under this job's boundary mode."""
        return tuple(
            boundary_variant(getattr(gallery, name)(), self.boundary)
            for name in self.filter_names
        )

    def to_dict(self) -> Dict[str, object]:
        """The job's full spec as JSON-clean data -- the exact inverse
        of :meth:`from_dict`, and the journal's canonical record of
        what was submitted."""
        return {
            "tenant": self.tenant,
            "pattern": self.pattern,
            "grid_shape": list(self.grid_shape),
            "boundary": self.boundary,
            "iterations": self.iterations,
            "priority": self.priority,
            "partition_shape": (
                None
                if self.partition_shape is None
                else list(self.partition_shape)
            ),
            "seed": self.seed,
            "block_depth": self.block_depth,
            "exact": self.exact,
            "spares": self.spares,
            "fault_rates": (
                None
                if self.fault_rates is None
                else [[kind, rate] for kind, rate in self.fault_rates]
            ),
            "fault_seed": self.fault_seed,
            "abft": self.abft,
            "label": self.label,
            "batch": self.batch,
            "filters": None if self.filters is None else list(self.filters),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "StencilJob":
        """Build a job from a ``jobs.json`` entry (unknown keys rejected)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise JobSpecError(f"unknown job fields: {sorted(unknown)}")
        kwargs = dict(data)
        for key in ("grid_shape", "partition_shape", "filters"):
            if kwargs.get(key) is not None:
                kwargs[key] = tuple(kwargs[key])
        if kwargs.get("fault_rates") is not None and not isinstance(
            kwargs["fault_rates"], Mapping
        ):
            kwargs["fault_rates"] = dict(kwargs["fault_rates"])
        return cls(**kwargs)


@dataclass
class JobResult:
    """One completed job's output and full cost accounting.

    Cycle totals come straight off the :class:`StencilRun`, so the
    PR 5 reconciliation invariant carries over: a guarded job's totals
    decompose exactly as fault-free closed form plus its
    :class:`~repro.runtime.faults.FaultStats` recovery buckets, and the
    service accounts reconcile as exact integer sums of these records.
    """

    job: StencilJob
    partition: Optional[Partition]
    output: np.ndarray
    comm_cycles: int
    compute_cycles: int
    half_strips: int
    exchanges: int
    block_depth: int
    machine_seconds: float
    host_seconds: float
    elapsed_seconds: float
    useful_flops: int
    mflops: float
    fault_stats: FaultStats = field(default_factory=FaultStats)
    queue_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def cycles(self) -> int:
        """Total modeled machine cycles (comm + compute)."""
        return self.comm_cycles + self.compute_cycles

    @property
    def checksum(self) -> str:
        """A stable fingerprint of the float32 output bits."""
        return hashlib.sha256(
            np.ascontiguousarray(self.output).tobytes()
        ).hexdigest()[:16]

    def identical_to(self, other: "JobResult") -> bool:
        """Bitwise float32 equality of the two outputs."""
        return bool(np.array_equal(self.output, other.output))

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.job.tenant,
            "label": self.job.label,
            "pattern": self.job.pattern,
            "boundary": self.job.boundary,
            "grid_shape": list(self.job.grid_shape),
            "iterations": self.job.iterations,
            "priority": self.job.priority,
            "partition": (
                {
                    "origin": list(self.partition.origin),
                    "shape": list(self.partition.shape),
                }
                if self.partition is not None
                else None
            ),
            "comm_cycles": self.comm_cycles,
            "compute_cycles": self.compute_cycles,
            "cycles": self.cycles,
            "half_strips": self.half_strips,
            "exchanges": self.exchanges,
            "block_depth": self.block_depth,
            "machine_seconds": self.machine_seconds,
            "host_seconds": self.host_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "useful_flops": self.useful_flops,
            "mflops": self.mflops,
            "queue_seconds": self.queue_seconds,
            "wall_seconds": self.wall_seconds,
            "checksum": self.checksum,
            "faults_injected": self.fault_stats.total_injected,
            "faults_detected": self.fault_stats.total_detected,
        }

    def to_journal_dict(self) -> Dict[str, object]:
        """Everything needed to reconstruct this result after a crash:
        the full job spec, the partition rectangle, every charged
        counter, the fault stats, and the raw float32 output bits
        (base64) -- so a journal-resumed ledger can equal an
        uninterrupted run's ledger bit for bit, identity checks
        included."""
        return {
            "job": self.job.to_dict(),
            "partition": (
                None
                if self.partition is None
                else {
                    "parent_shape": list(self.partition.parent_shape),
                    "origin": list(self.partition.origin),
                    "shape": list(self.partition.shape),
                }
            ),
            "output_shape": list(self.output.shape),
            "output_b64": base64.b64encode(
                np.ascontiguousarray(self.output, dtype=np.float32).tobytes()
            ).decode("ascii"),
            "comm_cycles": self.comm_cycles,
            "compute_cycles": self.compute_cycles,
            "half_strips": self.half_strips,
            "exchanges": self.exchanges,
            "block_depth": self.block_depth,
            "machine_seconds": self.machine_seconds,
            "host_seconds": self.host_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "useful_flops": self.useful_flops,
            "mflops": self.mflops,
            "fault_stats": self.fault_stats.to_dict(),
            "queue_seconds": self.queue_seconds,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_journal_dict(cls, data: Mapping[str, object]) -> "JobResult":
        """Rebuild a completed job's result from its journal record."""
        part = data.get("partition")
        partition = (
            None
            if part is None
            else Partition(
                tuple(part["parent_shape"]),
                tuple(part["origin"]),
                tuple(part["shape"]),
            )
        )
        output = np.frombuffer(
            base64.b64decode(str(data["output_b64"])), dtype=np.float32
        ).reshape(tuple(data["output_shape"]))
        return cls(
            job=StencilJob.from_dict(dict(data["job"])),
            partition=partition,
            output=output,
            comm_cycles=int(data["comm_cycles"]),
            compute_cycles=int(data["compute_cycles"]),
            half_strips=int(data["half_strips"]),
            exchanges=int(data["exchanges"]),
            block_depth=int(data["block_depth"]),
            machine_seconds=float(data["machine_seconds"]),
            host_seconds=float(data["host_seconds"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
            useful_flops=int(data["useful_flops"]),
            mflops=float(data["mflops"]),
            fault_stats=FaultStats.from_dict(dict(data["fault_stats"])),
            queue_seconds=float(data["queue_seconds"]),
            wall_seconds=float(data["wall_seconds"]),
        )


def partition_machine(
    params: MachineParams,
    partition: Partition,
    *,
    spares: int = 0,
) -> CM2:
    """A carved-out machine running one partition's rectangle.

    The machine's parameters are the parent's, resized to the
    partition's node count, so per-partition cost modeling (peak rate,
    comm constants) describes the hardware the tenant actually holds.
    """
    return CM2(
        params.with_nodes(partition.num_nodes),
        shape=partition.shape,
        spares=spares,
        partition=partition,
    )


def execute_job(
    job: StencilJob,
    machine: CM2,
    *,
    queue_seconds: float = 0.0,
) -> JobResult:
    """Run a job on a machine whose node grid it fits.

    Deterministic: the input and coefficients derive from ``job.seed``,
    the plan comes from the shared compile cache (keyed by value, so a
    cache shared with other tenants cannot change the bits), and the
    result is exactly what the same job produces solo.
    """
    grid_rows, grid_cols = machine.shape
    rows, cols = job.grid_shape
    if rows % grid_rows or cols % grid_cols:
        raise JobSpecError(
            f"job grid {job.grid_shape} does not divide evenly over the "
            f"{grid_rows}x{grid_cols} partition node grid"
        )
    if job.batched:
        return _execute_batched_job(
            job, machine, queue_seconds=queue_seconds
        )
    pattern = job.build_pattern()
    compiled = compile_stencil(pattern, machine.params, tenant=job.tenant)
    rng = np.random.default_rng(job.seed)
    source = CMArray.from_numpy(
        "X", machine, rng.standard_normal(job.grid_shape).astype(np.float32)
    )
    coefficients = {
        name: CMArray.from_numpy(
            name,
            machine,
            rng.standard_normal(job.grid_shape).astype(np.float32),
        )
        for name in pattern.coefficient_names()
    }
    injector = None
    resilience = None
    if job.guarded:
        injector = FaultInjector(
            seed=job.fault_seed, rates=dict(job.fault_rates or ())
        )
        resilience = ResiliencePolicy(
            max_remaps=max(1, job.spares), abft=job.abft
        )
    started = time.perf_counter()
    try:
        run: StencilRun = apply_stencil(
            compiled,
            source,
            coefficients,
            "R",
            iterations=job.iterations,
            exact=job.exact,
            block_depth=job.block_depth,
            faults=injector,
            resilience=resilience,
            tenant=job.tenant,
        )
    except FaultError as error:
        raise JobFaultError(job.tenant, job.label, error) from error
    wall = time.perf_counter() - started
    return JobResult(
        job=job,
        partition=machine.partition,
        output=run.result.to_numpy(),
        comm_cycles=run.comm_cycles_total,
        compute_cycles=run.compute_cycles_total,
        half_strips=run.half_strips_total,
        exchanges=run.exchanges,
        block_depth=run.block_depth,
        machine_seconds=run.params.seconds(
            run.comm_cycles_total + run.compute_cycles_total
        ),
        host_seconds=run.host_seconds_total,
        elapsed_seconds=run.elapsed_seconds,
        useful_flops=run.useful_flops,
        mflops=run.mflops,
        fault_stats=run.fault_stats,
        queue_seconds=queue_seconds,
        wall_seconds=wall,
    )


def _execute_batched_job(
    job: StencilJob,
    machine: CM2,
    *,
    queue_seconds: float = 0.0,
) -> JobResult:
    """The batched-job branch of :func:`execute_job`.

    Same determinism contract: the batch of inputs and the (shared)
    coefficient arrays derive from ``job.seed`` -- the batch first, then
    each coefficient in sorted-name order -- so re-running the job
    anywhere reproduces the bits.  The result array is the full
    ``(batch, filters, rows, cols)`` stack.
    """
    from ..runtime.batch import BatchStencilRun, CMBatch, apply_stencil_batch

    patterns = job.build_filters()
    filters = tuple(
        compile_stencil(pattern, machine.params, tenant=job.tenant)
        for pattern in patterns
    )
    rng = np.random.default_rng(job.seed)
    source = CMBatch.from_numpy(
        "X",
        machine,
        rng.standard_normal((job.batch,) + job.grid_shape).astype(np.float32),
    )
    coeff_names = sorted(
        {name for pattern in patterns for name in pattern.coefficient_names()}
    )
    coefficients = {
        name: CMArray.from_numpy(
            name,
            machine,
            rng.standard_normal(job.grid_shape).astype(np.float32),
        )
        for name in coeff_names
    }
    injector = None
    resilience = None
    if job.guarded:
        injector = FaultInjector(
            seed=job.fault_seed, rates=dict(job.fault_rates or ())
        )
        resilience = ResiliencePolicy(abft=job.abft)
    started = time.perf_counter()
    try:
        run: BatchStencilRun = apply_stencil_batch(
            filters,
            source,
            coefficients,
            "R",
            iterations=job.iterations,
            exact=job.exact,
            block_depth=job.block_depth,
            faults=injector,
            resilience=resilience,
            tenant=job.tenant,
        )
    except FaultError as error:
        raise JobFaultError(job.tenant, job.label, error) from error
    wall = time.perf_counter() - started
    return JobResult(
        job=job,
        partition=machine.partition,
        output=run.result.to_numpy(),
        comm_cycles=run.total_comm_cycles,
        compute_cycles=run.total_compute_cycles,
        half_strips=run.total_half_strips,
        exchanges=run.num_exchanges,
        block_depth=max(run.block_depths),
        machine_seconds=run.params.seconds(
            run.total_comm_cycles + run.total_compute_cycles
        ),
        host_seconds=run.host_seconds_total,
        elapsed_seconds=run.elapsed_seconds,
        useful_flops=run.useful_flops,
        mflops=run.mflops,
        fault_stats=run.fault_stats,
        queue_seconds=queue_seconds,
        wall_seconds=wall,
    )


def solo_run(
    job: StencilJob,
    *,
    params: Optional[MachineParams] = None,
    shape: Optional[Tuple[int, int]] = None,
) -> JobResult:
    """The job on a private machine of the same node-grid shape.

    The bit-identity reference for every scheduled run: same seed, same
    geometry, nothing shared.  ``shape`` (or the job's own
    ``partition_shape``) names the node grid; it must match the shape
    the scheduler placed the job on for the comparison to be meaningful.
    """
    shape = shape or job.partition_shape
    if shape is None:
        raise JobSpecError(
            "solo_run needs a node-grid shape: set job.partition_shape "
            "or pass shape="
        )
    base = params or MachineParams()
    machine = CM2(
        base.with_nodes(shape[0] * shape[1]),
        shape=shape,
        spares=job.spares,
    )
    return execute_job(job, machine)
