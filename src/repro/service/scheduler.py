"""The async multi-tenant job scheduler, with fault containment.

``submit`` is asynchronous: it enqueues a :class:`~repro.service.jobs.
StencilJob` and immediately returns a :class:`JobHandle` the caller can
wait on.  A small crew of worker threads drains the queue: a worker
claims the highest-priority waiting job whose partition request the
pool can satisfy *right now* (so small jobs backfill around a big job
waiting for space), carves the partition, runs the job on it, releases
the partition, and charges the tenant's account -- all detection,
recovery, and cost accounting riding on the job's own guarded run.

PR 8 extends the runtime's "bit-identical or typed error, never silent
corruption" contract to the job-orchestration layer:

* A frozen :class:`~repro.service.policy.ServicePolicy` fixes every
  job's wall-clock deadline, cycle budget, retry budget with capped
  exponential backoff, circuit-breaker thresholds, and the queue
  watermark.  Terminal non-successes are **recorded on the handle** as
  typed errors (:class:`JobTimeoutError`, :class:`JobCancelledError`,
  :class:`JobQuarantinedError`, :class:`OverloadError`,
  :class:`WorkerCrashError`, or the run's own typed failure) and
  re-raise only from ``JobHandle.result()`` in the caller's frame --
  never inside a worker.
* A supervisor thread polls for dead workers (a seeded
  :class:`~repro.runtime.faults.ServiceFaultInjector` can crash them
  mid-job), reclaims the dead worker's partition, re-enqueues its
  in-flight job, and respawns the worker; it also aborts injected
  hangs at the deadline.  Worker crashes, hangs, and deadline overruns
  are *retryable* (jobs are deterministic, so a retried attempt that
  completes is bit-identical); typed run failures and cycle-budget
  breaches are terminal.
* Per-tenant circuit breakers quarantine tenants whose jobs keep
  failing (closed -> open -> half-open probe -> closed), and a queue
  watermark sheds the lowest-priority job in sight at admission with a
  typed :class:`OverloadError` -- healthy tenants stay bit-identical
  to their solo runs throughout.
* An optional append-only JSONL :class:`~repro.service.journal.
  JobJournal` records every submission, attempt, completion (output
  bits included), and terminal outcome.  A scheduler pointed at an
  existing journal *resumes*: re-submitted jobs whose content-addressed
  key is already settled replay their recorded result/outcome and
  charges instead of re-running, so a SIGKILL'd service finishes with
  the same ledger fingerprint an uninterrupted run produces.
  :meth:`Scheduler.kill` simulates the SIGKILL (drops in-flight work
  unjournaled and uncharged) for tests and the chaos campaign.

Lock discipline (checked by ``repro racecheck``): all queue/worker
state -- ``_queue``, ``_handles``, ``_inflight``, ``_occurrences``,
``_running``, ``_closed``, ``_killed``, ``_stop_supervisor``,
``_workers`` -- is guarded by ``_cond``; circuit breakers live under
the independent ``_breaker_lock``.  The global acquisition order is
``_cond`` first, then any of pool/journal/accounts/breaker locks; no
code path takes ``_cond`` while holding one of those, so the lock
graph stays acyclic.  Helpers suffixed ``_locked`` (and ``_claim``)
declare a ``# guarded-by: _cond`` precondition instead of acquiring.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..machine.geometry import PartitionError
from ..runtime.faults import ServiceFaultInjector, ServiceFaultKind
from ..verify import lockdep
from .accounting import ServiceAccounts
from .errors import (
    JobCancelledError,
    JobQuarantinedError,
    JobTimeoutError,
    OverloadError,
    SchedulerClosedError,
    SchedulerShutdownError,
    ServiceError,
    WorkerCrashError,
    _JobScopedError,
)
from .jobs import JobResult, StencilJob, execute_job
from .journal import JobJournal, JournalState, job_key
from .partition import POLICIES, MachinePool
from .policy import ServicePolicy

#: Outcomes whose typed errors count against the tenant's breaker.
_BREAKER_OUTCOMES = ("failed", "timeout")

#: Typed errors a journal replay can reconstruct exactly by name.
_REPLAY_ERRORS = {
    cls.__name__: cls
    for cls in (
        JobTimeoutError,
        JobCancelledError,
        JobQuarantinedError,
        OverloadError,
        WorkerCrashError,
    )
}


class _InjectedWorkerCrash(BaseException):
    """Raised by the fault plane to kill a worker thread mid-job.

    Derives from ``BaseException`` so the worker's normal failure
    handling (``except Exception``) cannot absorb it -- the thread
    dies with its partition held, exactly like a real crash, and the
    supervisor has to clean up.
    """


class JobHandle:
    """A submitted job's future result, outcome included.

    ``outcome`` tracks the job record's lifecycle: ``queued`` ->
    ``running`` -> one of ``completed`` / ``failed`` / ``timeout`` /
    ``cancelled`` / ``quarantined`` / ``shed``.  Terminal typed errors
    are recorded here and re-raise from :meth:`result` in the caller's
    own frame; ``attempts`` counts how many times a worker claimed the
    job (retries after crashes/hangs increment it).
    """

    def __init__(
        self,
        job: StencilJob,
        seq: int,
        scheduler: Optional["Scheduler"] = None,
    ) -> None:
        self.job = job
        self.seq = seq
        self.key: str = ""
        self.attempts = 0
        self.outcome = "queued"
        self.submitted_wall = time.perf_counter()
        self.started_wall: Optional[float] = None
        self._scheduler = scheduler
        self._done = threading.Event()
        self._result: Optional[JobResult] = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def error(self) -> Optional[BaseException]:
        """The recorded typed error of a non-completed outcome."""
        return self._error

    def result(self, timeout: Optional[float] = None) -> JobResult:
        """Block until the job finishes; re-raise its recorded error.

        An expired wait raises a typed :class:`JobTimeoutError`
        carrying the tenant and job label (the job itself keeps
        running; only this wait gave up).
        """
        if not self._done.wait(timeout):
            raise JobTimeoutError(
                self.job.tenant,
                self.job.label,
                f"job {self.job.label!r} (tenant {self.job.tenant!r}) "
                f"still running after {timeout}s",
            )
        if self._error is not None:
            raise self._error
        return self._result

    def cancel(self) -> bool:
        """Remove the job from the queue if no worker has claimed it.

        True iff the job was still queued: it is recorded as
        ``cancelled`` with a typed :class:`JobCancelledError` and the
        tenant is charged nothing.  A running or settled job returns
        False and is left alone.
        """
        if self._scheduler is None:
            return False
        return self._scheduler.cancel(self)

    # -- scheduler-side transitions -----------------------------------

    def _mark_running(self, attempt: int) -> None:
        self.attempts = attempt
        self.outcome = "running"
        self.started_wall = time.perf_counter()

    def _finish(self, result: JobResult) -> None:
        self._result = result
        self.outcome = "completed"
        self._done.set()

    def _record(self, outcome: str, error: BaseException) -> None:
        self._error = error
        self.outcome = outcome
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._record("failed", error)


@dataclass
class _QueueEntry:
    handle: JobHandle
    shape: Tuple[int, int]
    attempt: int = 1
    #: Earliest claim time -- retry backoff without blocking a worker.
    not_before: float = 0.0

    @property
    def sort_key(self) -> Tuple[int, int]:
        # Higher priority first; FIFO within a priority.
        return (-self.handle.job.priority, self.handle.seq)


@dataclass
class _Inflight:
    """What the supervisor needs to clean up after a dead worker."""

    entry: _QueueEntry
    tile: object
    started: float
    abort: threading.Event = field(default_factory=threading.Event)


@dataclass
class _Breaker:
    """One tenant's circuit-breaker state machine."""

    state: str = "closed"  # closed | open | half_open
    failures: int = 0
    opened_at: float = 0.0


class Scheduler:
    """Admission, placement, execution, accounting -- the service core."""

    def __init__(
        self,
        pool: MachinePool,
        *,
        policy: str = "first_fit",
        max_workers: Optional[int] = None,
        service_policy: Optional[ServicePolicy] = None,
        faults: Optional[ServiceFaultInjector] = None,
        journal_path: Optional[str] = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {policy!r}"
            )
        self.pool = pool
        self.policy = policy
        self.service_policy = service_policy or ServicePolicy()
        if max_workers is None:
            # One worker per default-sized partition the pool can host:
            # more would only contend, fewer would idle free tiles.
            max_workers = max(1, pool.capacity(pool.default_partition))
        self.max_workers = max_workers
        self.accounts = ServiceAccounts()
        self._faults = faults
        self._journal: Optional[JobJournal] = None
        self._resume_state: Optional[JournalState] = None
        if journal_path is not None:
            self._resume_state = JournalState.load(journal_path)
            self._journal = JobJournal(journal_path)
        self._cond = lockdep.condition("Scheduler._cond")
        self._queue: List[_QueueEntry] = []  # guarded-by: _cond
        self._handles: List[JobHandle] = []  # guarded-by: _cond
        self._seq = itertools.count()  # guarded-by: _cond
        self._occurrences: Dict[str, int] = {}  # guarded-by: _cond
        self._inflight: Dict[str, _Inflight] = {}  # guarded-by: _cond
        self._breakers: Dict[str, _Breaker] = {}  # guarded-by: _breaker_lock
        self._breaker_lock = lockdep.lock("Scheduler._breaker_lock")
        self._running = 0  # guarded-by: _cond
        self._closed = False  # guarded-by: _cond
        self._killed = False  # guarded-by: _cond
        self._stop_supervisor = False  # guarded-by: _cond
        # guarded-by: _cond
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"stencil-worker-{i}", daemon=True
            )
            for i in range(self.max_workers)
        ]
        for worker in self._workers:
            worker.start()
        self._supervisor = threading.Thread(
            target=self._supervise, name="stencil-supervisor", daemon=True
        )
        self._supervisor.start()

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------

    def submit(self, job: StencilJob) -> JobHandle:
        """Enqueue a job; returns immediately with its handle.

        Impossible requests -- a partition shape that can never tile the
        pool's grid or clear its spare reservation, more spares than the
        reservation holds -- raise :class:`PartitionError` here, at
        admission, rather than queueing forever.  A closed scheduler
        raises :class:`SchedulerClosedError`; a full queue may raise
        :class:`OverloadError` (when this job is the lowest-priority
        work in sight); a quarantined tenant's job is *recorded* as
        ``quarantined`` on the returned handle, not raised.
        """
        shape = job.partition_shape or self.pool.default_partition
        # Admission control: raises PartitionError when no legal tile
        # (or spare lease) could ever satisfy the request.
        self.pool._check_shape(shape)
        if job.spares > self.pool.num_reserved:
            raise PartitionError(
                f"job wants {job.spares} spare nodes but the pool "
                f"reserves only {self.pool.num_reserved}"
            )
        with self._cond:
            if self._closed:
                raise SchedulerClosedError("scheduler is closed")
            handle = JobHandle(job, next(self._seq), scheduler=self)
            spec = json.dumps(
                job.to_dict(), sort_keys=True, separators=(",", ":")
            )
            occurrence = self._occurrences.get(spec, 0)
            self._occurrences[spec] = occurrence + 1
            handle.key = job_key(job, occurrence)

            # Journal resume: a settled key replays its recorded
            # result/outcome and charges instead of re-running.
            if self._resume_state is not None and self._resume_state.is_settled(
                handle.key
            ):
                self._handles.append(handle)
                self._replay(handle)
                return handle

            # Circuit breaker: an open breaker refuses the tenant at
            # admission -- recorded on the handle, never raised here.
            if not self._breaker_admits(job.tenant):
                self._handles.append(handle)
                self._journal_submitted(handle, occurrence)
                self._settle_failure(
                    handle,
                    "quarantined",
                    JobQuarantinedError(
                        job.tenant,
                        job.label,
                        f"tenant {job.tenant!r} is quarantined: its "
                        f"circuit breaker is open",
                    ),
                )
                return handle

            # Overload shedding: past the watermark, the lowest-priority
            # job in sight goes -- the incoming one raises, a queued one
            # is recorded as shed.
            depth = self.service_policy.max_queue_depth
            if depth and len(self._queue) >= depth:
                victim = min(
                    self._queue,
                    key=lambda e: (e.handle.job.priority, -e.handle.seq),
                )
                if (job.priority, -handle.seq) <= (
                    victim.handle.job.priority,
                    -victim.handle.seq,
                ):
                    self.accounts.note_outcome(job.tenant, "shed")
                    raise OverloadError(
                        job.tenant,
                        job.label,
                        f"queue is at its watermark ({depth}) and job "
                        f"{job.label!r} is the lowest-priority work in "
                        f"sight",
                    )
                self._queue.remove(victim)
                self._settle_failure(
                    victim.handle,
                    "shed",
                    OverloadError(
                        victim.handle.job.tenant,
                        victim.handle.job.label,
                        f"shed at the queue watermark ({depth}) to admit "
                        f"higher-priority job {job.label!r}",
                    ),
                )

            self._handles.append(handle)
            self._journal_submitted(handle, occurrence)
            self._queue.append(_QueueEntry(handle, tuple(shape)))
            self._cond.notify_all()
        return handle

    def submit_all(self, jobs) -> List[JobHandle]:
        return [self.submit(job) for job in jobs]

    def cancel(self, handle: JobHandle) -> bool:
        """Remove a still-queued job; see :meth:`JobHandle.cancel`."""
        with self._cond:
            entry = next(
                (e for e in self._queue if e.handle is handle), None
            )
            if entry is None:
                return False
            self._queue.remove(entry)
        self._settle_failure(
            handle,
            "cancelled",
            JobCancelledError(
                handle.job.tenant,
                handle.job.label,
                f"job {handle.job.label!r} cancelled while queued",
            ),
        )
        return True

    def drain(self, timeout: Optional[float] = None) -> List[JobResult]:
        """Wait for every submitted job; results in submission order.

        Failed jobs re-raise from here, like :meth:`JobHandle.result`.
        Jobs submitted concurrently with the drain are waited on too:
        the handle list is re-snapshot until no new submissions appear.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        results: List[JobResult] = []
        index = 0
        while True:
            with self._cond:
                pending = self._handles[index:]
            if not pending:
                return results
            for handle in pending:
                remaining = (
                    None
                    if deadline is None
                    else max(deadline - time.perf_counter(), 0.0)
                )
                results.append(handle.result(remaining))
                index += 1

    def close(self, timeout: Optional[float] = 60.0) -> None:
        """Stop accepting work, drain the queue, shut the workers down.

        Workers that fail to join within ``timeout`` -- a wedged job, a
        hang the supervisor has not aborted yet -- raise a typed
        :class:`SchedulerShutdownError` naming them, instead of leaking
        threads silently.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        while True:
            # Re-snapshot every pass: the supervisor may respawn a
            # crashed worker while we wait.
            alive = [w for w in self._workers if w.is_alive()]
            if not alive:
                break
            if deadline is not None and time.perf_counter() >= deadline:
                break
            alive[0].join(0.02)
        stuck = [w.name for w in self._workers if w.is_alive()]
        # The supervisor polls this flag between sleeps; the store must
        # hold _cond like every other mutation of scheduler state.
        with self._cond:
            self._stop_supervisor = True
        self._supervisor.join(
            timeout=max(
                1.0, 10 * self.service_policy.supervision_interval_seconds
            )
        )
        if self._journal is not None:
            self._journal.close()
        if stuck:
            raise SchedulerShutdownError(
                stuck, 0.0 if timeout is None else timeout
            )

    def kill(self) -> None:
        """Simulate a SIGKILL of the service process.

        Everything stops where it stands: queued jobs stay unsettled,
        in-flight results are dropped unjournaled and uncharged, and
        the journal file keeps only what was already fsync'd.  A new
        scheduler pointed at the same journal path resumes: completed
        jobs replay, in-flight ones re-run.
        """
        with self._cond:
            self._killed = True
            self._closed = True
            self._cond.notify_all()
        if self._journal is not None:
            self._journal.close()

    def breaker_state(self, tenant: str) -> str:
        """The tenant's circuit-breaker state (``closed`` when unseen)."""
        with self._breaker_lock:
            breaker = self._breakers.get(tenant)
            return "closed" if breaker is None else breaker.state

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Journal replay and settling
    # ------------------------------------------------------------------

    def _journal_submitted(self, handle: JobHandle, occurrence: int) -> None:
        if self._journal is not None and not self._killed:
            self._journal.record_submitted(handle.key, handle.job, occurrence)

    def _replay(self, handle: JobHandle) -> None:
        """Settle a handle from the journal's recorded history.

        Replayed charges and outcomes go through the same accounting
        (and breaker transitions) as live ones, so a resumed run's
        ledger fingerprint matches an uninterrupted run's; nothing is
        re-journaled.
        """
        state = self._resume_state
        result = state.result_for(handle.key)
        if result is not None:
            self.accounts.charge(result)
            self._breaker_success(handle.job.tenant)
            handle._finish(result)
            return
        record = state.outcomes[handle.key]
        outcome = str(record["outcome"])
        error_type = str(record.get("error_type", "ServiceError"))
        message = str(record.get("message", ""))
        cls = _REPLAY_ERRORS.get(error_type)
        error: BaseException
        if cls is not None:
            error = cls(handle.job.tenant, handle.job.label, message)
        else:
            error = _JobScopedError(
                handle.job.tenant,
                handle.job.label,
                f"[replayed {error_type}] {message}",
            )
        self.accounts.note_outcome(handle.job.tenant, outcome)
        if outcome in _BREAKER_OUTCOMES:
            self._breaker_failure(handle.job.tenant)
        handle._record(outcome, error)

    def _settle_success(self, handle: JobHandle, result: JobResult) -> None:
        if self._killed:
            return  # a real SIGKILL would have dropped this result too
        if self._journal is not None:
            self._journal.record_completed(handle.key, result)
        self.accounts.charge(result)
        self._breaker_success(handle.job.tenant)
        handle._finish(result)

    def _settle_failure(
        self, handle: JobHandle, outcome: str, error: BaseException
    ) -> None:
        if self._killed:
            return
        if self._journal is not None:
            self._journal.record_outcome(
                handle.key,
                outcome,
                type(error).__name__,
                str(error),
                tenant=handle.job.tenant,
                label=handle.job.label,
            )
        self.accounts.note_outcome(handle.job.tenant, outcome)
        if outcome in _BREAKER_OUTCOMES:
            self._breaker_failure(handle.job.tenant)
        handle._record(outcome, error)

    # ------------------------------------------------------------------
    # Circuit breakers
    # ------------------------------------------------------------------

    def _breaker_admits(self, tenant: str) -> bool:
        with self._breaker_lock:
            breaker = self._breakers.get(tenant)
            if breaker is None or breaker.state == "closed":
                return True
            if breaker.state == "open":
                elapsed = time.perf_counter() - breaker.opened_at
                if elapsed >= self.service_policy.breaker_cooldown_seconds:
                    breaker.state = "half_open"  # admit one probe
                    return True
                return False
            # half_open: the probe is already out; refuse the rest.
            return False

    def _breaker_failure(self, tenant: str) -> None:
        with self._breaker_lock:
            breaker = self._breakers.setdefault(tenant, _Breaker())
            if breaker.state == "half_open":
                breaker.state = "open"
                breaker.opened_at = time.perf_counter()
                return
            breaker.failures += 1
            if breaker.failures >= self.service_policy.breaker_threshold:
                breaker.state = "open"
                breaker.opened_at = time.perf_counter()

    def _breaker_success(self, tenant: str) -> None:
        with self._breaker_lock:
            breaker = self._breakers.get(tenant)
            if breaker is not None:
                breaker.state = "closed"
                breaker.failures = 0

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------

    def _supervise(self) -> None:
        """Detect dead workers, reclaim their work, abort overdue hangs."""
        interval = self.service_policy.supervision_interval_seconds
        while True:
            time.sleep(interval)
            if self._stop_supervisor or self._killed:
                return
            with self._cond:
                if self._killed:
                    return
                for index, worker in enumerate(self._workers):
                    if worker.is_alive():
                        continue
                    inflight = self._inflight.pop(worker.name, None)
                    crashed = inflight is not None
                    if crashed:
                        self._running -= 1
                        self.pool.release(
                            inflight.tile,
                            spares=inflight.entry.handle.job.spares,
                        )
                        self._requeue_or_fail_locked(
                            inflight.entry, kind="crash"
                        )
                    if (crashed or not self._closed) and not self._killed:
                        replacement = threading.Thread(
                            target=self._worker,
                            name=worker.name,
                            daemon=True,
                        )
                        self._workers[index] = replacement
                        replacement.start()
                now = time.perf_counter()
                for inflight in self._inflight.values():
                    overdue = (
                        now - inflight.started
                        > self.service_policy.deadline_seconds
                    )
                    if overdue:
                        inflight.abort.set()
                if (
                    self._closed
                    and not self._queue
                    and not self._inflight
                    and not any(w.is_alive() for w in self._workers)
                ):
                    return

    def _requeue_or_fail_locked(self, entry: _QueueEntry, kind: str) -> None:  # guarded-by: _cond
        """Retry a crashed/hung/overrun attempt, or record its typed end.

        Called with the condition lock held (so no worker can observe a
        window where the job is neither queued nor in flight and exit
        early).
        """
        handle = entry.handle
        job = handle.job
        if entry.attempt < self.service_policy.max_attempts:
            self.accounts.note_retry(job.tenant)
            entry.not_before = time.perf_counter() + (
                self.service_policy.backoff_seconds(entry.attempt)
            )
            entry.attempt += 1
            self._queue.append(entry)
            self._cond.notify_all()
            return
        if kind == "crash":
            error: ServiceError = WorkerCrashError(
                job.tenant,
                job.label,
                f"job {job.label!r} (tenant {job.tenant!r}) lost its "
                f"worker {entry.attempt} time(s); retry budget spent",
            )
            outcome = "failed"
        else:
            error = JobTimeoutError(
                job.tenant,
                job.label,
                f"job {job.label!r} (tenant {job.tenant!r}) overran its "
                f"{self.service_policy.deadline_seconds}s deadline on "
                f"all {entry.attempt} attempt(s)",
            )
            outcome = "timeout"
        self._settle_failure(handle, outcome, error)

    def _requeue_or_fail(self, entry: _QueueEntry, kind: str) -> None:
        with self._cond:
            self._requeue_or_fail_locked(entry, kind)

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    def _claim(self):  # guarded-by: _cond
        """Pop the best currently-placeable entry, with its partition.

        Called under the condition lock.  Scans waiting jobs in priority
        order and admits the first whose tile and spare lease the pool
        can satisfy now -- strict priority for placeable jobs, backfill
        past jobs that must wait for space.  Entries inside their retry
        backoff window are skipped until it elapses.
        """
        now = time.perf_counter()
        for entry in sorted(self._queue, key=lambda e: e.sort_key):
            if entry.not_before > now:
                continue
            try:
                acquired = self.pool.acquire(
                    entry.shape,
                    spares=entry.handle.job.spares,
                    policy=self.policy,
                )
            except PartitionError as error:
                self._queue.remove(entry)
                return entry, None, error
            if acquired is not None:
                self._queue.remove(entry)
                return entry, acquired, None
        return None

    def _worker(self) -> None:
        try:
            self._worker_loop()
        except _InjectedWorkerCrash:
            # Die without the default unhandled-exception traceback;
            # the tile stays held and the in-flight entry registered,
            # exactly like a real crash -- the supervisor notices the
            # dead thread and cleans up either way.
            return

    def _worker_loop(self) -> None:
        policy = self.service_policy
        name = threading.current_thread().name
        while True:
            with self._cond:
                claimed = self._claim()
                while claimed is None:
                    if self._killed:
                        return
                    if (
                        self._closed
                        and not self._queue
                        and not self._inflight
                    ):
                        return
                    self._cond.wait(0.01)
                    claimed = self._claim()
                entry, acquired, error = claimed
                self._running += 1
                inflight = None
                if acquired is not None:
                    inflight = _Inflight(
                        entry=entry,
                        tile=acquired[0],
                        started=time.perf_counter(),
                    )
                    self._inflight[name] = inflight
            handle = entry.handle
            job = handle.job
            crashed = False
            try:
                if error is not None:
                    self._settle_failure(handle, "failed", error)
                    continue
                tile, machine = acquired
                handle._mark_running(entry.attempt)
                if self._journal is not None and not self._killed:
                    self._journal.record_attempt(handle.key, entry.attempt)
                if self._faults is not None and self._faults.fires(
                    ServiceFaultKind.WORKER_CRASH, handle.key, entry.attempt
                ):
                    # Die with the tile held, like a real crash: the
                    # supervisor reclaims it and re-enqueues the job.
                    crashed = True
                    raise _InjectedWorkerCrash(name)
                if self._faults is not None and self._faults.fires(
                    ServiceFaultKind.JOB_HANG, handle.key, entry.attempt
                ):
                    # Cooperative hang: wait for the supervisor's
                    # deadline abort (with a backstop so a stopped
                    # supervisor cannot wedge the worker forever).
                    inflight.abort.wait(
                        policy.deadline_seconds
                        + 4 * policy.supervision_interval_seconds
                    )
                    self.pool.release(tile, spares=job.spares)
                    self._requeue_or_fail(entry, kind="hang")
                    continue
                try:
                    result = execute_job(
                        job,
                        machine,
                        queue_seconds=handle.started_wall
                        - handle.submitted_wall,
                    )
                except Exception as failure:
                    self.pool.release(tile, spares=job.spares)
                    self._settle_failure(handle, "failed", failure)
                    continue
                self.pool.release(tile, spares=job.spares)
                wall = time.perf_counter() - handle.started_wall
                if (
                    policy.enforce_deadline_after_run
                    and wall > policy.deadline_seconds
                ):
                    self._requeue_or_fail(entry, kind="deadline")
                    continue
                if policy.cycle_budget and result.cycles > policy.cycle_budget:
                    # Deterministic job: the breach would reproduce
                    # exactly, so it is terminal, not retried.
                    self._settle_failure(
                        handle,
                        "timeout",
                        JobTimeoutError(
                            job.tenant,
                            job.label,
                            f"job {job.label!r} (tenant {job.tenant!r}) "
                            f"cost {result.cycles} cycles, over its "
                            f"budget of {policy.cycle_budget}",
                        ),
                    )
                    continue
                self._settle_success(handle, result)
            finally:
                if not crashed:
                    with self._cond:
                        self._inflight.pop(name, None)
                        self._running -= 1
                        self._cond.notify_all()
