"""The async multi-tenant job scheduler.

``submit`` is asynchronous: it enqueues a :class:`~repro.service.jobs.
StencilJob` and immediately returns a :class:`JobHandle` the caller can
wait on.  A small crew of worker threads drains the queue: a worker
claims the highest-priority waiting job whose partition request the
pool can satisfy *right now* (so small jobs backfill around a big job
waiting for space), carves the partition, runs the job on it, releases
the partition, and charges the tenant's account -- all detection,
recovery, and cost accounting riding on the job's own guarded run.

Every job executes on its own carved-out machine with its own storage,
health ledger, and spare lease; the only cross-job state is the compile
driver's thread-safe value-keyed caches, so a scheduled run is
bit-identical to the same job run solo -- the property ``repro serve``
and the service test suite assert job by job.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..machine.geometry import PartitionError
from .accounting import ServiceAccounts
from .jobs import JobResult, StencilJob, execute_job
from .partition import POLICIES, MachinePool


class JobHandle:
    """A submitted job's future result."""

    def __init__(self, job: StencilJob, seq: int) -> None:
        self.job = job
        self.seq = seq
        self.submitted_wall = time.perf_counter()
        self.started_wall: Optional[float] = None
        self._done = threading.Event()
        self._result: Optional[JobResult] = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> JobResult:
        """Block until the job finishes; re-raise its failure."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.job.label!r} still running after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._result

    def _finish(self, result: JobResult) -> None:
        self._result = result
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()


@dataclass
class _QueueEntry:
    handle: JobHandle
    shape: Tuple[int, int]

    @property
    def sort_key(self) -> Tuple[int, int]:
        # Higher priority first; FIFO within a priority.
        return (-self.handle.job.priority, self.handle.seq)


class Scheduler:
    """Admission, placement, execution, accounting -- the service core."""

    def __init__(
        self,
        pool: MachinePool,
        *,
        policy: str = "first_fit",
        max_workers: Optional[int] = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {policy!r}"
            )
        self.pool = pool
        self.policy = policy
        if max_workers is None:
            # One worker per default-sized partition the pool can host:
            # more would only contend, fewer would idle free tiles.
            max_workers = max(1, pool.capacity(pool.default_partition))
        self.max_workers = max_workers
        self.accounts = ServiceAccounts()
        self._cond = threading.Condition()
        self._queue: List[_QueueEntry] = []
        self._handles: List[JobHandle] = []
        self._seq = itertools.count()
        self._running = 0
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"stencil-worker-{i}", daemon=True
            )
            for i in range(self.max_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------

    def submit(self, job: StencilJob) -> JobHandle:
        """Enqueue a job; returns immediately with its handle.

        Impossible requests -- a partition shape that can never tile the
        pool's grid or clear its spare reservation, more spares than the
        reservation holds -- raise :class:`PartitionError` here, at
        admission, rather than queueing forever.
        """
        shape = job.partition_shape or self.pool.default_partition
        # Admission control: raises PartitionError when no legal tile
        # (or spare lease) could ever satisfy the request.
        self.pool._check_shape(shape)
        if job.spares > self.pool.num_reserved:
            raise PartitionError(
                f"job wants {job.spares} spare nodes but the pool "
                f"reserves only {self.pool.num_reserved}"
            )
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            handle = JobHandle(job, next(self._seq))
            self._queue.append(_QueueEntry(handle, tuple(shape)))
            self._handles.append(handle)
            self._cond.notify_all()
        return handle

    def submit_all(self, jobs) -> List[JobHandle]:
        return [self.submit(job) for job in jobs]

    def drain(self, timeout: Optional[float] = None) -> List[JobResult]:
        """Wait for every submitted job; results in submission order.

        Failed jobs re-raise from here, like :meth:`JobHandle.result`.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        results = []
        for handle in list(self._handles):
            remaining = (
                None if deadline is None else deadline - time.perf_counter()
            )
            results.append(handle.result(remaining))
        return results

    def close(self, timeout: Optional[float] = 60.0) -> None:
        """Stop accepting work and shut the workers down."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        for worker in self._workers:
            worker.join(timeout)

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    def _claim(self):
        """Pop the best currently-placeable entry, with its partition.

        Called under the condition lock.  Scans waiting jobs in priority
        order and admits the first whose tile and spare lease the pool
        can satisfy now -- strict priority for placeable jobs, backfill
        past jobs that must wait for space.
        """
        for entry in sorted(self._queue, key=lambda e: e.sort_key):
            try:
                acquired = self.pool.acquire(
                    entry.shape,
                    spares=entry.handle.job.spares,
                    policy=self.policy,
                )
            except PartitionError as error:
                self._queue.remove(entry)
                return entry, None, error
            if acquired is not None:
                self._queue.remove(entry)
                return entry, acquired, None
        return None

    def _worker(self) -> None:
        while True:
            with self._cond:
                claimed = self._claim()
                while claimed is None:
                    if self._closed and not self._queue:
                        return
                    self._cond.wait(0.1)
                    claimed = self._claim()
                self._running += 1
            entry, acquired, error = claimed
            handle = entry.handle
            try:
                if error is not None:
                    raise error
                tile, machine = acquired
                handle.started_wall = time.perf_counter()
                try:
                    result = execute_job(
                        handle.job,
                        machine,
                        queue_seconds=handle.started_wall
                        - handle.submitted_wall,
                    )
                finally:
                    self.pool.release(tile, spares=handle.job.spares)
                self.accounts.charge(result)
                handle._finish(result)
            except BaseException as failure:  # noqa: BLE001 - routed to handle
                self.accounts.note_failure(handle.job.tenant)
                handle._fail(failure)
            finally:
                with self._cond:
                    self._running -= 1
                    self._cond.notify_all()
