"""Stencil-as-a-service: multi-tenant scheduling over one machine.

The service layer carves the simulated CM-2's node grid into per-tenant
partitions (:class:`MachinePool`), admits :class:`StencilJob` requests
through an async :class:`Scheduler` under a placement policy, runs them
concurrently -- each on its own carved-out machine, bit-identical to a
solo run -- and keeps per-tenant cycle accounting
(:class:`ServiceAccounts`) that reconciles exactly against the job
records.
"""

from ..machine.geometry import Partition, PartitionError
from .accounting import ServiceAccounts, TenantAccount
from .jobs import (
    BOUNDARIES,
    JobResult,
    JobSpecError,
    StencilJob,
    execute_job,
    partition_machine,
    solo_run,
)
from .partition import POLICIES, MachinePool
from .scheduler import JobHandle, Scheduler

__all__ = [
    "BOUNDARIES",
    "POLICIES",
    "JobHandle",
    "JobResult",
    "JobSpecError",
    "MachinePool",
    "Partition",
    "PartitionError",
    "Scheduler",
    "ServiceAccounts",
    "StencilJob",
    "TenantAccount",
    "execute_job",
    "partition_machine",
    "solo_run",
]
