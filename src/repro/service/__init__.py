"""Stencil-as-a-service: multi-tenant scheduling over one machine.

The service layer carves the simulated CM-2's node grid into per-tenant
partitions (:class:`MachinePool`), admits :class:`StencilJob` requests
through an async :class:`Scheduler` under a placement policy, runs them
concurrently -- each on its own carved-out machine, bit-identical to a
solo run -- and keeps per-tenant cycle accounting
(:class:`ServiceAccounts`) that reconciles exactly against the job
records.

PR 8 adds the fault-containment layer: a frozen :class:`ServicePolicy`
(deadlines, cycle budgets, bounded retry, breaker thresholds, queue
watermark), typed service errors recorded on the :class:`JobHandle`
rather than raised into workers, worker supervision with crash
recovery, per-tenant circuit breakers, overload shedding, and an
append-only :class:`JobJournal` that lets a SIGKILL'd service resume
with the same ledger an uninterrupted run produces.
"""

from ..machine.geometry import Partition, PartitionError
from .accounting import ServiceAccounts, TenantAccount
from .errors import (
    JobCancelledError,
    JobFaultError,
    JobQuarantinedError,
    JobTimeoutError,
    OverloadError,
    SchedulerClosedError,
    SchedulerShutdownError,
    ServiceError,
    WorkerCrashError,
)
from .jobs import (
    BOUNDARIES,
    JobResult,
    JobSpecError,
    StencilJob,
    execute_job,
    partition_machine,
    solo_run,
)
from .journal import JobJournal, JournalState, job_key
from .partition import POLICIES, MachinePool
from .policy import ServicePolicy
from .scheduler import JobHandle, Scheduler

__all__ = [
    "BOUNDARIES",
    "POLICIES",
    "JobCancelledError",
    "JobFaultError",
    "JobHandle",
    "JobJournal",
    "JobQuarantinedError",
    "JobResult",
    "JobSpecError",
    "JobTimeoutError",
    "JournalState",
    "MachinePool",
    "OverloadError",
    "Partition",
    "PartitionError",
    "Scheduler",
    "SchedulerClosedError",
    "SchedulerShutdownError",
    "ServiceAccounts",
    "ServiceError",
    "ServicePolicy",
    "StencilJob",
    "TenantAccount",
    "WorkerCrashError",
    "execute_job",
    "job_key",
    "partition_machine",
    "solo_run",
]
