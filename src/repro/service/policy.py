"""The service policy: every job's fault-containment knobs, frozen.

The runtime has :class:`~repro.runtime.faults.ResiliencePolicy` for the
data path; the scheduler has :class:`ServicePolicy` for the job path.
One frozen object fixes, for every job the scheduler runs:

* a **wall-clock deadline** per attempt (a hung job is aborted and
  retried instead of blocking its worker forever) and a **cycle
  budget** (a job whose modeled cost exceeds it records a typed
  ``JobTimeoutError`` -- deterministic jobs make the post-run check
  exact, and retrying a budget breach would only reproduce it);
* a **bounded retry** budget with capped exponential backoff for
  transient service faults (worker crashes, hangs, deadline overruns).
  Jobs are deterministic, so a retried attempt that completes is
  bit-identical to what the first attempt would have produced;
* the per-tenant **circuit breaker**: consecutive failures to trip it,
  and the cooldown after which a single probe job is admitted;
* the **queue watermark** for overload shedding (0 = unbounded).

All fields are validated at construction; nonsense values raise
:class:`ValueError` immediately instead of misbehaving mid-recovery.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServicePolicy:
    """Knobs of the scheduler's fault-containment layer.

    Attributes:
        deadline_seconds: wall-clock ceiling per job attempt.  The
            supervisor aborts interruptible waits (injected hangs) at
            the deadline; a finished run is additionally checked
            against it when ``enforce_deadline_after_run`` is set.
        cycle_budget: modeled-cycle ceiling per job (0 = unlimited).
            A completed run whose ``comm + compute`` total exceeds it
            is discarded and recorded as a typed ``JobTimeoutError``;
            it is not retried (the job is deterministic, so the breach
            would reproduce exactly).
        max_attempts: total attempts per job (first try included)
            before a crashing/hanging job records its typed failure.
        backoff_base_seconds: stall before the second attempt; doubles
            per further attempt.
        backoff_cap_seconds: ceiling of the per-retry backoff stall.
        breaker_threshold: consecutive failed/timed-out jobs that open
            a tenant's circuit breaker (quarantine).
        breaker_cooldown_seconds: how long an open breaker refuses the
            tenant before admitting one half-open probe job.
        max_queue_depth: queue watermark for overload shedding
            (0 = unbounded).  At admission past the watermark the
            lowest-priority job in sight is shed with a typed
            ``OverloadError`` -- the incoming job itself when nothing
            queued outranks it.
        supervision_interval_seconds: the supervisor's polling period
            for dead workers and overdue jobs.
        enforce_deadline_after_run: also apply the wall-clock deadline
            to attempts that finished computing (off by default: the
            modeled machine is deterministic, so wall time is host
            noise unless a test opts in).
    """

    deadline_seconds: float = 60.0
    cycle_budget: int = 0
    max_attempts: int = 3
    backoff_base_seconds: float = 0.002
    backoff_cap_seconds: float = 0.05
    breaker_threshold: int = 3
    breaker_cooldown_seconds: float = 30.0
    max_queue_depth: int = 0
    supervision_interval_seconds: float = 0.005
    enforce_deadline_after_run: bool = False

    def __post_init__(self) -> None:
        def require(ok: bool, what: str) -> None:
            if not ok:
                raise ValueError(f"ServicePolicy: {what}")

        require(self.deadline_seconds > 0,
                f"deadline_seconds must be positive, got "
                f"{self.deadline_seconds}")
        require(self.cycle_budget >= 0,
                f"cycle_budget must be >= 0 (0 = unlimited), got "
                f"{self.cycle_budget}")
        require(self.max_attempts >= 1,
                f"max_attempts must be >= 1, got {self.max_attempts}")
        require(self.backoff_base_seconds >= 0,
                f"backoff_base_seconds must be >= 0, got "
                f"{self.backoff_base_seconds}")
        require(self.backoff_cap_seconds >= self.backoff_base_seconds,
                f"backoff_cap_seconds ({self.backoff_cap_seconds}) must be "
                f">= backoff_base_seconds ({self.backoff_base_seconds})")
        require(self.breaker_threshold >= 1,
                f"breaker_threshold must be >= 1, got "
                f"{self.breaker_threshold}")
        require(self.breaker_cooldown_seconds >= 0,
                f"breaker_cooldown_seconds must be >= 0, got "
                f"{self.breaker_cooldown_seconds}")
        require(self.max_queue_depth >= 0,
                f"max_queue_depth must be >= 0 (0 = unbounded), got "
                f"{self.max_queue_depth}")
        require(self.supervision_interval_seconds > 0,
                f"supervision_interval_seconds must be positive, got "
                f"{self.supervision_interval_seconds}")

    def backoff_seconds(self, attempt: int) -> float:
        """Capped exponential backoff before attempt ``attempt + 1``
        (``attempt`` counts completed attempts, 1-based)."""
        return min(
            self.backoff_base_seconds * (2 ** max(attempt - 1, 0)),
            self.backoff_cap_seconds,
        )
