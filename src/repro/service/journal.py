"""The append-only job journal: crash-safe JSONL ledger of the service.

Every externally visible transition of a job's life is appended as one
JSON line -- ``submitted`` when admission accepts it, ``attempt`` when a
worker claims it, ``completed`` with the full result (output bits
included, base64), and ``outcome`` when a terminal typed error is
recorded instead.  Each append is flushed and fsync'd before the
scheduler proceeds, so a SIGKILL can lose at most the line being
written; :meth:`JournalState.load` tolerates exactly that -- a torn
trailing line is discarded, never a parse error.

Job identity is content-addressed: :func:`job_key` hashes the job's
canonical spec (:meth:`StencilJob.to_dict`) plus a per-run occurrence
index, so submitting the same spec twice on purpose yields two distinct
journal keys, while a resumed service maps re-submitted specs onto
their previous keys deterministically.  On resume the scheduler skips
jobs whose key already has a ``completed`` (or terminal ``outcome``)
line -- replaying the recorded result and charges instead of re-running
-- and re-runs everything that was merely submitted or in flight.  The
chaos campaign asserts the resumed ledger fingerprint equals an
uninterrupted run's.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, IO, Mapping, Optional, Tuple

from ..verify import lockdep
from .jobs import JobResult, StencilJob

#: Terminal outcome tags an ``outcome`` event may carry.
TERMINAL_OUTCOMES = (
    "failed",
    "timeout",
    "cancelled",
    "quarantined",
    "shed",
)


def job_key(job: StencilJob, occurrence: int) -> str:
    """Content-addressed identity of one submission of one job spec.

    The hash covers the full canonical spec and the 0-based occurrence
    index of that spec within the run, so identical specs submitted N
    times get N distinct, deterministic keys -- the property that lets
    a resumed service re-map its submissions onto the journal without
    any server-assigned ids surviving the crash.
    """
    payload = json.dumps(
        {"job": job.to_dict(), "occurrence": int(occurrence)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


class JobJournal:
    """Append-only JSONL writer for job lifecycle events.

    Thread-safe; every append is ``flush`` + ``fsync`` so completed work
    survives a SIGKILL of the host process.

    Lock discipline: ``_handle`` is guarded by ``_lock``, and the fsync
    *deliberately* happens under it -- append order is durability
    order, which the resume fingerprint check depends on.  The journal
    never calls back into the scheduler, so it is a leaf of the lock
    graph.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = lockdep.lock("JobJournal._lock")
        self._handle: Optional[IO[str]] = open(self.path, "a", encoding="utf-8")  # guarded-by: _lock

    # -- appends ------------------------------------------------------

    def record_submitted(self, key: str, job: StencilJob, occurrence: int) -> None:
        self._append(
            {
                "event": "submitted",
                "key": key,
                "occurrence": int(occurrence),
                "job": job.to_dict(),
            }
        )

    def record_attempt(self, key: str, attempt: int) -> None:
        self._append({"event": "attempt", "key": key, "attempt": int(attempt)})

    def record_completed(self, key: str, result: JobResult) -> None:
        self._append(
            {
                "event": "completed",
                "key": key,
                "result": result.to_journal_dict(),
            }
        )

    def record_outcome(
        self,
        key: str,
        outcome: str,
        error_type: str,
        message: str,
        *,
        tenant: str,
        label: str,
    ) -> None:
        if outcome not in TERMINAL_OUTCOMES:
            raise ValueError(
                f"outcome must be one of {TERMINAL_OUTCOMES}, got {outcome!r}"
            )
        self._append(
            {
                "event": "outcome",
                "key": key,
                "outcome": outcome,
                "error_type": error_type,
                "message": message,
                "tenant": tenant,
                "label": label,
            }
        )

    def _append(self, record: Mapping[str, object]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line + "\n")
            self._handle.flush()
            # An fsync outside the lock could commit line N+1 before
            # N, breaking the crash-resume fingerprint guarantee:
            # lock-blocking-ok: append order is durability order.
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


@dataclass
class JournalState:
    """What a journal file says happened, replayable at resume.

    Attributes:
        submitted: key -> (occurrence, job spec dict) of every admission.
        attempts: key -> highest attempt number seen (in-flight marker).
        completed: key -> the full ``completed`` result record.
        outcomes: key -> the terminal ``outcome`` record.
        torn_tail: whether the final line was truncated mid-write (the
            one loss a SIGKILL is allowed to cause).
    """

    submitted: Dict[str, Tuple[int, Dict[str, object]]] = field(default_factory=dict)
    attempts: Dict[str, int] = field(default_factory=dict)
    completed: Dict[str, Dict[str, object]] = field(default_factory=dict)
    outcomes: Dict[str, Dict[str, object]] = field(default_factory=dict)
    torn_tail: bool = False
    #: ``completed`` events for a key that already had one -- a double
    #: run.  The chaos campaign asserts this stays zero.
    duplicate_completions: int = 0

    @classmethod
    def load(cls, path: str) -> "JournalState":
        state = cls()
        if not os.path.exists(path):
            return state
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().split("\n")
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if index >= len(lines) - 2:
                    state.torn_tail = True
                    break
                raise
            event = record.get("event")
            key = str(record.get("key"))
            if event == "submitted":
                state.submitted[key] = (
                    int(record["occurrence"]),
                    dict(record["job"]),
                )
            elif event == "attempt":
                state.attempts[key] = max(
                    state.attempts.get(key, 0), int(record["attempt"])
                )
            elif event == "completed":
                if key in state.completed:
                    state.duplicate_completions += 1
                state.completed[key] = dict(record["result"])
            elif event == "outcome":
                state.outcomes[key] = dict(record)
        return state

    def is_settled(self, key: str) -> bool:
        """Whether this key needs no re-run on resume."""
        return key in self.completed or key in self.outcomes

    def result_for(self, key: str) -> Optional[JobResult]:
        """The reconstructed result of a completed key (None otherwise)."""
        record = self.completed.get(key)
        if record is None:
            return None
        return JobResult.from_journal_dict(record)
