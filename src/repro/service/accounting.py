"""Per-tenant cycle accounting for the stencil service.

Every completed job charges its tenant's account with the job's modeled
totals -- comm cycles, compute cycles, half-strips, useful flops, host
and machine seconds -- exactly as they appear on the job's
:class:`~repro.service.jobs.JobResult`.  Because those totals obey the
PR 5 reconciliation invariant (closed form plus recovery buckets), the
service ledger inherits it: the per-tenant sums, the per-partition busy
times, and the grand totals are all exact integer/float sums of the job
records, and :meth:`ServiceAccounts.reconcile` re-derives them from the
records to prove no concurrent charge was lost or double-counted.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.fairness import jain_index, speedup
from ..verify import lockdep
from .jobs import JobResult

#: Terminal outcomes :meth:`ServiceAccounts.note_outcome` accepts, and
#: the tenant counter each one bumps.
OUTCOME_COUNTERS = {
    "failed": "failures",
    "timeout": "timeouts",
    "cancelled": "cancelled",
    "quarantined": "quarantined",
    "shed": "shed",
}


@dataclass
class TenantAccount:
    """One tenant's running totals, in cycle terms."""

    tenant: str
    jobs: int = 0
    failures: int = 0
    timeouts: int = 0
    cancelled: int = 0
    quarantined: int = 0
    shed: int = 0
    retries: int = 0
    comm_cycles: int = 0
    compute_cycles: int = 0
    half_strips: int = 0
    exchanges: int = 0
    useful_flops: int = 0
    machine_seconds: float = 0.0
    host_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    queue_seconds: float = 0.0
    wall_seconds: float = 0.0
    faults_injected: int = 0
    faults_detected: int = 0

    @property
    def cycles(self) -> int:
        return self.comm_cycles + self.compute_cycles

    @property
    def mflops(self) -> float:
        """The tenant's own serial throughput: its useful flops over its
        jobs' summed modeled elapsed time."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.useful_flops / self.elapsed_seconds / 1e6

    def charge(self, result: JobResult) -> None:
        self.jobs += 1
        self.comm_cycles += result.comm_cycles
        self.compute_cycles += result.compute_cycles
        self.half_strips += result.half_strips
        self.exchanges += result.exchanges
        self.useful_flops += result.useful_flops
        self.machine_seconds += result.machine_seconds
        self.host_seconds += result.host_seconds
        self.elapsed_seconds += result.elapsed_seconds
        self.queue_seconds += result.queue_seconds
        self.wall_seconds += result.wall_seconds
        self.faults_injected += result.fault_stats.total_injected
        self.faults_detected += result.fault_stats.total_detected

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "jobs": self.jobs,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "quarantined": self.quarantined,
            "shed": self.shed,
            "retries": self.retries,
            "comm_cycles": self.comm_cycles,
            "compute_cycles": self.compute_cycles,
            "cycles": self.cycles,
            "half_strips": self.half_strips,
            "exchanges": self.exchanges,
            "useful_flops": self.useful_flops,
            "machine_seconds": self.machine_seconds,
            "host_seconds": self.host_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "queue_seconds": self.queue_seconds,
            "wall_seconds": self.wall_seconds,
            "mflops": self.mflops,
            "faults_injected": self.faults_injected,
            "faults_detected": self.faults_detected,
        }


@dataclass
class ServiceAccounts:
    """The whole service's ledger: tenants, partitions, job records.

    Lock discipline: every ledger container is guarded by ``_lock``
    (reentrant, so derived metrics can compose locked properties).  The
    ledger calls only into pure fairness math -- a leaf of the lock
    graph, safe to charge from any scheduler context.
    """

    tenants: Dict[str, TenantAccount] = field(default_factory=dict)  # guarded-by: _lock
    records: List[JobResult] = field(default_factory=list)  # guarded-by: _lock
    #: Modeled busy seconds per partition origin -- the concurrency
    #: skeleton: the makespan is the busiest partition's total.
    # guarded-by: _lock
    partition_seconds: Dict[Optional[Tuple[int, int]], float] = field(
        default_factory=dict
    )
    #: Every terminal non-success and every retry, as (tenant, outcome)
    #: pairs -- the raw log :meth:`reconcile` re-derives the outcome
    #: counters from, same discipline as the cycle counters.
    outcome_log: List[Tuple[str, str]] = field(default_factory=list)  # guarded-by: _lock
    _lock: threading.RLock = field(
        default_factory=lambda: lockdep.rlock("ServiceAccounts._lock"),
        repr=False,
        compare=False,
    )

    def charge(self, result: JobResult) -> None:
        with self._lock:
            account = self.tenants.get(result.job.tenant)
            if account is None:
                account = self.tenants[result.job.tenant] = TenantAccount(
                    result.job.tenant
                )
            account.charge(result)
            origin = (
                result.partition.origin if result.partition is not None else None
            )
            self.partition_seconds[origin] = (
                self.partition_seconds.get(origin, 0.0)
                + result.elapsed_seconds
            )
            self.records.append(result)

    def _account(self, tenant: str) -> TenantAccount:  # guarded-by: _lock
        account = self.tenants.get(tenant)
        if account is None:
            account = self.tenants[tenant] = TenantAccount(tenant)
        return account

    def note_failure(self, tenant: str) -> None:
        self.note_outcome(tenant, "failed")

    def note_outcome(self, tenant: str, outcome: str) -> None:
        """Record a terminal non-success (typed error) on the ledger."""
        counter = OUTCOME_COUNTERS.get(outcome)
        if counter is None:
            raise ValueError(
                f"outcome must be one of {sorted(OUTCOME_COUNTERS)}, "
                f"got {outcome!r}"
            )
        with self._lock:
            account = self._account(tenant)
            setattr(account, counter, getattr(account, counter) + 1)
            self.outcome_log.append((tenant, outcome))

    def note_retry(self, tenant: str) -> None:
        """Record one re-enqueue of a tenant's job after a service fault."""
        with self._lock:
            self._account(tenant).retries += 1
            self.outcome_log.append((tenant, "retry"))

    # ------------------------------------------------------------------
    # Derived service metrics (cycle terms)
    # ------------------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        with self._lock:
            return sum(a.cycles for a in self.tenants.values())

    @property
    def total_useful_flops(self) -> int:
        with self._lock:
            return sum(a.useful_flops for a in self.tenants.values())

    @property
    def serial_seconds(self) -> float:
        """Modeled time had every job run back to back."""
        with self._lock:
            return sum(a.elapsed_seconds for a in self.tenants.values())

    @property
    def makespan_seconds(self) -> float:
        """Modeled time of the service run: the busiest partition."""
        with self._lock:
            if not self.partition_seconds:
                return 0.0
            return max(self.partition_seconds.values())

    @property
    def aggregate_mflops(self) -> float:
        """Useful flops over the makespan -- what concurrency buys."""
        makespan = self.makespan_seconds
        if makespan <= 0:
            return 0.0
        return self.total_useful_flops / makespan / 1e6

    @property
    def concurrency_speedup(self) -> float:
        return speedup(self.serial_seconds, self.makespan_seconds)

    def fairness(self) -> float:
        """Jain's index over per-tenant cycle allocations."""
        with self._lock:
            return jain_index(a.cycles for a in self.tenants.values())

    def reconcile(self) -> bool:
        """Re-derive every total from the job records.

        True iff each tenant's counters equal the exact sums of its
        records and the partition busy times equal the exact sums of
        their records' elapsed seconds -- the concurrency-safety check
        that no charge was lost or double-counted.
        """
        with self._lock:
            by_tenant: Dict[str, List[JobResult]] = {}
            by_origin: Dict[Optional[Tuple[int, int]], float] = {}
            for result in self.records:
                by_tenant.setdefault(result.job.tenant, []).append(result)
                origin = (
                    result.partition.origin
                    if result.partition is not None
                    else None
                )
                by_origin[origin] = (
                    by_origin.get(origin, 0.0) + result.elapsed_seconds
                )
            by_outcome: Dict[Tuple[str, str], int] = {}
            for tenant, outcome in self.outcome_log:
                by_outcome[(tenant, outcome)] = (
                    by_outcome.get((tenant, outcome), 0) + 1
                )
            for tenant, account in self.tenants.items():
                records = by_tenant.get(tenant, [])
                if account.jobs != len(records):
                    return False
                for outcome, counter in OUTCOME_COUNTERS.items():
                    if getattr(account, counter) != by_outcome.get(
                        (tenant, outcome), 0
                    ):
                        return False
                if account.retries != by_outcome.get((tenant, "retry"), 0):
                    return False
                if account.comm_cycles != sum(r.comm_cycles for r in records):
                    return False
                if account.compute_cycles != sum(
                    r.compute_cycles for r in records
                ):
                    return False
                if account.half_strips != sum(r.half_strips for r in records):
                    return False
                if account.useful_flops != sum(
                    r.useful_flops for r in records
                ):
                    return False
            if set(by_tenant) != set(
                t for t, a in self.tenants.items() if a.jobs
            ):
                return False
            return by_origin == {
                k: v for k, v in self.partition_seconds.items() if v
            }

    def ledger_fingerprint(self) -> str:
        """A deterministic hash of everything two runs must agree on.

        Covers, per tenant: the sorted modeled-cost records of every
        completed job (label, cycle totals, half-strips, exchanges,
        useful flops, output checksum) and the terminal outcome counts.
        Excludes wall-clock fields, retry counts, and partition
        placement -- host noise and scheduling nondeterminism a
        crash/resume is allowed to change.  An uninterrupted run and a
        journal-resumed run of the same workload must produce equal
        fingerprints; the chaos campaign asserts exactly that.
        """
        with self._lock:
            per_tenant: Dict[str, Dict[str, object]] = {}
            for result in self.records:
                bucket = per_tenant.setdefault(
                    result.job.tenant, {"records": [], "outcomes": {}}
                )
                bucket["records"].append(
                    [
                        result.job.label,
                        result.comm_cycles,
                        result.compute_cycles,
                        result.half_strips,
                        result.exchanges,
                        result.useful_flops,
                        result.checksum,
                    ]
                )
            for tenant, account in self.tenants.items():
                bucket = per_tenant.setdefault(
                    tenant, {"records": [], "outcomes": {}}
                )
                bucket["outcomes"] = {
                    outcome: getattr(account, counter)
                    for outcome, counter in sorted(OUTCOME_COUNTERS.items())
                }
            for bucket in per_tenant.values():
                bucket["records"].sort()
            payload = json.dumps(
                per_tenant, sort_keys=True, separators=(",", ":")
            )
            return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def tenant_rows(self) -> List[Dict[str, object]]:
        """Per-tenant rows for :func:`repro.analysis.fairness.format_tenant_table`."""
        with self._lock:
            total = self.total_cycles
            rows = []
            for tenant in sorted(self.tenants):
                account = self.tenants[tenant]
                rows.append(
                    {
                        "tenant": tenant,
                        "jobs": account.jobs,
                        "cycles": account.cycles,
                        "comm_cycles": account.comm_cycles,
                        "compute_cycles": account.compute_cycles,
                        "useful_flops": account.useful_flops,
                        "mflops": account.mflops,
                        "share": account.cycles / total if total else 0.0,
                    }
                )
            return rows

    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "tenants": {
                    t: a.to_dict() for t, a in sorted(self.tenants.items())
                },
                "total_cycles": self.total_cycles,
                "total_useful_flops": self.total_useful_flops,
                "serial_seconds": self.serial_seconds,
                "makespan_seconds": self.makespan_seconds,
                "aggregate_mflops": self.aggregate_mflops,
                "concurrency_speedup": self.concurrency_speedup,
                "fairness": self.fairness(),
                "reconciled": self.reconcile(),
                "ledger_fingerprint": self.ledger_fingerprint(),
                "jobs": [r.to_dict() for r in self.records],
            }
