"""Typed service-level errors: the scheduler's fault vocabulary.

The runtime's contract is "bit-identical or typed ``FaultError``, never
silent corruption"; the service layer mirrors it at job granularity.
Every way a job can fail to produce a result has a typed error carrying
the tenant and job label, and the scheduler *records* these outcomes on
the job's handle (and in the journal) instead of letting them escape
into a worker thread -- ``JobHandle.result()`` is where they re-raise,
in the caller's own frame.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..runtime.faults import FaultError


class ServiceError(Exception):
    """Base of every typed error the service layer raises or records."""


class SchedulerClosedError(ServiceError, RuntimeError):
    """A job was submitted to a scheduler that has been closed.

    Also a ``RuntimeError`` so pre-PR 8 callers that caught the old
    ad-hoc ``RuntimeError("scheduler is closed")`` keep working.
    """


class SchedulerShutdownError(ServiceError):
    """``Scheduler.close`` timed out with workers still running.

    Carries the stuck workers' thread names so the operator knows which
    in-flight jobs never came back instead of silently leaking threads.
    """

    def __init__(self, stuck_workers: Sequence[str], timeout: float) -> None:
        self.stuck_workers: Tuple[str, ...] = tuple(stuck_workers)
        super().__init__(
            f"{len(self.stuck_workers)} worker(s) failed to join within "
            f"{timeout}s: {', '.join(self.stuck_workers)}"
        )


class _JobScopedError(ServiceError):
    """A typed error tied to one tenant's job."""

    def __init__(self, tenant: str, label: str, message: str) -> None:
        self.tenant = tenant
        self.label = label
        super().__init__(message)


class JobTimeoutError(_JobScopedError, TimeoutError):
    """A job ran past its wall-clock deadline or cycle budget, or a
    ``JobHandle.result(timeout=...)`` wait expired while the job was
    still running.  Carries the tenant and job label either way."""


class JobCancelledError(_JobScopedError):
    """A still-queued job was cancelled before any worker claimed it."""


class JobQuarantinedError(_JobScopedError):
    """The tenant's circuit breaker is open: its jobs keep failing, so
    new submissions are refused at admission (recorded, not run) until
    the breaker's cooldown admits a probe."""


class OverloadError(_JobScopedError):
    """The queue watermark was hit and this job was shed (it was the
    lowest-priority work in sight at admission time)."""


class WorkerCrashError(_JobScopedError):
    """Every attempt at this job died with its worker; the retry budget
    is spent."""


class JobFaultError(_JobScopedError, FaultError):
    """A typed runtime ``FaultError`` surfaced by a job's guarded run,
    re-raised with the job's tenant and label attached.

    Subclasses both :class:`ServiceError` and ``FaultError`` so the
    scheduler's breaker/retry classification *and* runtime-level
    handlers see the same typed object; the original fault rides on
    ``fault`` (and ``__cause__``).
    """

    def __init__(self, tenant: str, label: str, fault: FaultError) -> None:
        self.fault = fault
        super().__init__(
            tenant,
            label,
            f"job {label!r} (tenant {tenant!r}) hit a "
            f"{type(fault).__name__}: {fault}",
        )
