"""F-STEN: the section 2 stencil diagrams.

Each Fortran statement the paper displays is parsed, recognized, and
round-tripped to its tap set; the section 5.1 border-width example
(N=2, S=0, W=3, E=1) is checked through the geometry code.
"""

import pytest

from conftest import emit
from repro.fortran.parser import parse_assignment
from repro.fortran.recognizer import recognize_assignment
from repro.stencil.gallery import border_demo

PAPER_STATEMENTS = {
    "cross5": (
        "R = C1 * CSHIFT (X, DIM=1, SHIFT=-1)"
        " + C2 * CSHIFT (X, DIM=2, SHIFT=-1)"
        " + C3 * X"
        " + C4 * CSHIFT (X, DIM=2, SHIFT=+1)"
        " + C5 * CSHIFT (X, DIM=1, SHIFT=+1)",
        {(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)},
    ),
    "cross9": (
        "R = C1 * CSHIFT (X, DIM=1, SHIFT=-2)"
        " + C2 * CSHIFT (X, DIM=1, SHIFT=-1)"
        " + C3 * CSHIFT (X, DIM=2, SHIFT=-2)"
        " + C4 * CSHIFT (X, DIM=2, SHIFT=-1)"
        " + C5 * X"
        " + C6 * CSHIFT (X, DIM=2, SHIFT=+2)"
        " + C7 * CSHIFT (X, DIM=2, SHIFT=+1)"
        " + C8 * CSHIFT (X, DIM=1, SHIFT=+1)"
        " + C9 * CSHIFT (X, DIM=1, SHIFT=+2)",
        {(-2, 0), (-1, 0), (0, -2), (0, -1), (0, 0),
         (0, 2), (0, 1), (1, 0), (2, 0)},
    ),
    "square9": (
        "R = C1 * CSHIFT(CSHIFT (X, 1, -1), 2, -1)"
        " + C2 * CSHIFT(X, 1, -1)"
        " + C3 * CSHIFT(CSHIFT (X, 1, -1), 2, +1)"
        " + C4 * CSHIFT (X, 2, -1)"
        " + C5 * X"
        " + C6 * CSHIFT (X, 2, +1)"
        " + C7 * CSHIFT (CSHIFT (X, 1, +1), 2, -1)"
        " + C8 * CSHIFT(X, 1, +1)"
        " + C9 * CSHIFT(CSHIFT (X, 1, +1), 2, +1)",
        {(dy, dx) for dy in (-1, 0, 1) for dx in (-1, 0, 1)},
    ),
    "asymmetric5": (
        "R = C1 * X"
        " + C2 * CSHIFT (X, 2, +1)"
        " + C3 * CSHIFT(CSHIFT (X, 1, +1), 2, -1)"
        " + C4 * CSHIFT (X, 1, +1)"
        " + C5 * CSHIFT (X, 1, +2)",
        {(0, 0), (0, 1), (1, -1), (1, 0), (2, 0)},
    ),
}


def recognize_all():
    return {
        name: recognize_assignment(parse_assignment(source))
        for name, (source, _) in PAPER_STATEMENTS.items()
    }


def test_section2_statements_round_trip(benchmark):
    patterns = benchmark.pedantic(recognize_all, rounds=1, iterations=1)
    print()
    for name, (_, expected) in PAPER_STATEMENTS.items():
        pattern = patterns[name]
        assert set(pattern.offsets) == expected, name
        print(f"--- {name} ---")
        print(pattern.pictogram())
        emit(benchmark, f"{name} taps", pattern.num_points)
    # Coefficient order is preserved from the source statements.
    assert patterns["cross9"].coefficient_names() == tuple(
        f"C{i}" for i in range(1, 10)
    )


def test_section51_border_width_example(benchmark):
    """The asymmetric border-width pictogram: N=2, S=0, W=3, E=1."""
    pattern = benchmark.pedantic(border_demo, rounds=1, iterations=1)
    widths = pattern.border_widths()
    print()
    print(pattern.pictogram())
    assert widths.north == 2
    assert widths.south == 0
    assert widths.west == 3
    assert widths.east == 1
    # The runtime pads all four sides by the maximum (section 5.1).
    assert widths.max_width == 3
    emit(benchmark, "border widths N/S/W/E", widths.as_tuple())
