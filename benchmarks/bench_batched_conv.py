"""Measure batched multi-convolution against the per-(grid, filter) loop.

Runs the four Table-1 filters (cross5, cross9, square9, diamond13) over a
batch of independent grids two ways and compares the *modeled* CM-2 time:

  loop     one ``apply_stencil`` call per (grid, filter) pair -- each call
           pays its own halo exchange and its own host dispatch;
  batched  one ``apply_stencil_batch`` call -- the four filters share one
           machine-wide halo exchange per batch entry, and the host issues
           each strip command once for the whole batch.

Bit-identity between the two is asserted at every size.  The modeled win
comes from amortization, not from skipping work: the batched pass still
executes every half-strip of every (grid, filter) pair, but the exchange
count collapses from batch x filters to batch, and the host-dispatch term
from batch x filters calls to one.  The acceptance bars at 1,024 nodes
(a 32x32 node grid) with batch 8 x 4 filters:

  * exchanges  == batch (one shared exchange per grid in the batch);
  * aggregate throughput >= 2x the per-filter loop.

A headline row runs the 27-point Laplacian over a 32-deep volume via
``apply_laplacian27`` (3 plane filters x 32 slabs in one machine pass)
and checks it against the plane-by-plane reference.

Run:  python benchmarks/bench_batched_conv.py
Writes BENCH_batched_conv.json at the repository root and exits nonzero
if any gate fails.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compiler.driver import compile_stencil  # noqa: E402
from repro.machine.machine import CM2  # noqa: E402
from repro.machine.params import MachineParams  # noqa: E402
from repro.runtime.batch import CMBatch, apply_stencil_batch  # noqa: E402
from repro.runtime.cm_array import CMArray  # noqa: E402
from repro.runtime.multidim import (  # noqa: E402
    CMArray3D,
    apply_laplacian27,
    apply_laplacian27_reference,
)
from repro.runtime.stencil_op import apply_stencil  # noqa: E402
from repro.stencil.gallery import (  # noqa: E402
    cross5,
    cross9,
    diamond13,
    square9,
)

SUBGRID = (16, 16)
BATCH = 8
DEPTH = 32  # slabs in the Laplacian headline volume
FILTERS = (cross5(), cross9(), square9(), diamond13())
DEFAULT_SIZES = (16, 64, 256, 1024)
REQUIRED_SPEEDUP_AT_1024 = 2.0


def bench_size(num_nodes, rng):
    params = MachineParams(num_nodes=num_nodes)
    machine = CM2(params)
    grid_rows, grid_cols = machine.shape
    shape = (grid_rows * SUBGRID[0], grid_cols * SUBGRID[1])
    compiled = [compile_stencil(p, params) for p in FILTERS]

    data = rng.standard_normal((BATCH,) + shape).astype(np.float32)
    coeff_names = sorted(
        {name for p in FILTERS for name in p.coefficient_names()}
    )
    coeffs = {
        name: CMArray.from_numpy(
            name, machine, rng.standard_normal(shape).astype(np.float32)
        )
        for name in coeff_names
    }

    batch = CMBatch.from_numpy("X", machine, data)
    run = apply_stencil_batch(compiled, batch, coeffs)
    batched_bits = run.result.to_numpy()

    # The reference: one solo apply_stencil per (grid, filter) pair,
    # over the same resident coefficient set.
    x_solo = CMArray("X_SOLO", machine, shape)
    r_solo = CMArray("R_SOLO", machine, shape)
    loop_elapsed = 0.0
    loop_exchanges = 0
    loop_host_calls = 0
    identical = True
    for b in range(BATCH):
        x_solo.set(data[b])
        for f, comp in enumerate(compiled):
            solo = apply_stencil(comp, x_solo, coeffs, r_solo)
            loop_elapsed += solo.elapsed_seconds
            loop_exchanges += solo.exchanges
            loop_host_calls += solo.host_calls
            identical = identical and bool(
                np.array_equal(batched_bits[b, f], solo.result.to_numpy())
            )

    return {
        "num_nodes": num_nodes,
        "grid": [grid_rows, grid_cols],
        "subgrid": list(SUBGRID),
        "batch": BATCH,
        "filters": [p.name for p in FILTERS],
        "loop_exchanges": loop_exchanges,
        "batched_exchanges": run.num_exchanges,
        "loop_host_calls": loop_host_calls,
        "batched_host_calls": run.host_calls,
        "loop_modeled_s": loop_elapsed,
        "batched_modeled_s": run.elapsed_seconds,
        "speedup": loop_elapsed / run.elapsed_seconds,
        "batched_mflops": run.mflops,
        "loop_mflops": run.useful_flops / loop_elapsed / 1e6,
        "identical": identical,
    }


def bench_laplacian(num_nodes, rng):
    params = MachineParams(num_nodes=num_nodes)
    machine = CM2(params)
    grid_rows, grid_cols = machine.shape
    shape = (grid_rows * SUBGRID[0], grid_cols * SUBGRID[1], DEPTH)
    volume = rng.standard_normal(shape).astype(np.float32)

    src = CMArray3D.from_numpy("V", machine, volume)
    result, run = apply_laplacian27(src, params=params)
    batched = result.to_numpy()

    ref_src = CMArray3D.from_numpy("V_REF", machine, volume)
    reference = apply_laplacian27_reference(
        ref_src, "R_REF", params=params
    ).to_numpy()

    return {
        "num_nodes": num_nodes,
        "grid": [grid_rows, grid_cols],
        "volume": list(shape),
        "slabs": DEPTH,
        "batched_exchanges": run.num_exchanges,
        "batched_modeled_s": run.elapsed_seconds,
        "batched_mflops": run.mflops,
        "identical": bool(np.array_equal(batched, reference)),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="machine sizes (node counts) to measure",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_batched_conv.json",
    )
    args = parser.parse_args(argv)

    rng = np.random.default_rng(1991)

    results = []
    for num_nodes in args.sizes:
        row = bench_size(num_nodes, rng)
        results.append(row)
        print(
            f"{row['num_nodes']:5d} nodes ({row['grid'][0]}x{row['grid'][1]}) "
            f"batch {row['batch']} x {len(row['filters'])} filters: "
            f"loop {row['loop_modeled_s'] * 1e3:8.2f} ms "
            f"({row['loop_exchanges']:3d} exchanges)   "
            f"batched {row['batched_modeled_s'] * 1e3:7.2f} ms "
            f"({row['batched_exchanges']:2d} exchanges)   "
            f"speedup {row['speedup']:5.2f}x   "
            f"identical: {row['identical']}"
        )

    largest = max(args.sizes)
    laplacian = bench_laplacian(largest, rng)
    print(
        f"{laplacian['num_nodes']:5d} nodes laplacian27 over "
        f"{laplacian['slabs']} slabs: "
        f"batched {laplacian['batched_modeled_s'] * 1e3:7.2f} ms "
        f"({laplacian['batched_exchanges']:2d} exchanges, "
        f"{laplacian['batched_mflops']:8.1f} MFLOPS)   "
        f"identical: {laplacian['identical']}"
    )

    report = {
        "benchmark": "batched_conv",
        "filters": [p.name for p in FILTERS],
        "batch": BATCH,
        "subgrid": list(SUBGRID),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "results": results,
        "laplacian27": laplacian,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    for row in results:
        where = f"{row['num_nodes']} nodes"
        if not row["identical"]:
            failures.append(f"{where}: batched results differ from the loop")
        if row["batched_exchanges"] != row["batch"]:
            failures.append(
                f"{where}: {row['batched_exchanges']} exchanges, expected "
                f"one shared exchange per batch entry ({row['batch']})"
            )
        if (
            row["num_nodes"] >= 1024
            and row["speedup"] < REQUIRED_SPEEDUP_AT_1024
        ):
            failures.append(
                f"{where}: speedup {row['speedup']:.2f}x below the "
                f"{REQUIRED_SPEEDUP_AT_1024:.0f}x bar"
            )
    if not laplacian["identical"]:
        failures.append(
            "laplacian27: batched volume differs from the plane-by-plane "
            "reference"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
