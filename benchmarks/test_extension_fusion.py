"""EXT-FUSE: the paper's future work, measured.

Section 7: the Gordon Bell tenth term "was added in separately.  (Future
versions of the compiler should be able to handle all ten terms as one
stencil pattern.)"  This extension implements that fusion; the benchmark
measures what it buys on the seismic kernel: the copy loop, the paper's
3x-unrolled loop, and the fused 10-term loop, all bit-identical.
"""

import numpy as np
import pytest

from conftest import emit, make_machine
from repro.analysis.timing import extrapolate_mflops
from repro.apps.seismic import SeismicModel, ricker_wavelet

STEPS = 16
RUNNERS = ("run_copy_loop", "run_unrolled_loop", "run_fused_loop")


def run_all(subgrid=(128, 256), steps=STEPS):
    timings, fields = {}, {}
    for runner in RUNNERS:
        machine = make_machine(16)
        shape = (
            subgrid[0] * machine.grid_rows,
            subgrid[1] * machine.grid_cols,
        )
        model = SeismicModel(
            machine,
            shape,
            dt=0.001,
            dx=10.0,
            source=(shape[0] // 4, shape[1] // 2),
        )
        model.set_initial_pulse(sigma=3.0)
        wavelet = ricker_wavelet(steps, 0.001)
        timing = getattr(model, runner)(steps, wavelet)
        timings[runner] = timing
        fields[runner] = model.wavefield()
    return timings, fields


def test_fused_ten_term_kernel(benchmark):
    timings, fields = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    # All three formulations compute the same physics, bit for bit.
    np.testing.assert_array_equal(
        fields["run_copy_loop"], fields["run_fused_loop"]
    )
    np.testing.assert_array_equal(
        fields["run_unrolled_loop"], fields["run_fused_loop"]
    )
    rates = {}
    for runner in RUNNERS:
        gflops = (
            extrapolate_mflops(timings[runner].mflops, 16, 2048) / 1e3
        )
        rates[runner] = gflops
        emit(benchmark, f"{runner} extrapolated Gflops", round(gflops, 2))
    # The ladder: fused > unrolled > copy.
    assert (
        rates["run_fused_loop"]
        > rates["run_unrolled_loop"]
        > rates["run_copy_loop"]
    )
    gain = rates["run_fused_loop"] / rates["run_unrolled_loop"]
    emit(benchmark, "fusion gain over unrolled", round(gain, 3))
    assert 1.02 < gain < 1.5


def test_fusion_removes_the_separate_pass(benchmark):
    """The fused loop issues fewer host calls and fewer memory cycles:
    the tenth term rides inside the microcode loop."""

    def pair():
        out = {}
        for runner in ("run_unrolled_loop", "run_fused_loop"):
            machine = make_machine(16)
            model = SeismicModel(machine, (256, 512), dt=0.001, dx=10.0)
            model.set_initial_pulse()
            timing = getattr(model, runner)(4)
            out[runner] = timing
        return out

    timings = benchmark.pedantic(pair, rounds=1, iterations=1)
    fused = timings["run_fused_loop"]
    unrolled = timings["run_unrolled_loop"]
    assert fused.useful_flops == unrolled.useful_flops
    assert fused.machine_seconds < unrolled.machine_seconds
    assert fused.host_seconds < unrolled.host_seconds
    emit(
        benchmark,
        "machine-time saving",
        round(1 - fused.machine_seconds / unrolled.machine_seconds, 3),
    )
    emit(
        benchmark,
        "host-time saving",
        round(1 - fused.host_seconds / unrolled.host_seconds, 3),
    )
