"""Throughput of the reproduction itself: compile and simulate speed.

Unlike the table/figure benches (which reproduce the paper's numbers
with single-shot pedantic runs), these are ordinary multi-round
pytest-benchmark measurements of the reproduction's own hot paths:
pattern compilation, the fast executor, and the cycle-stepped datapath.
They guard against performance regressions in the simulator.
"""

import numpy as np
import pytest

from conftest import make_machine
from repro.baseline.reference import reference_stencil
from repro.compiler.driver import compile_fortran, compile_stencil
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.stencil_op import apply_stencil
from repro.stencil.gallery import cross5, diamond13

PAPER_SUBROUTINE = """
SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)
REAL, ARRAY(:, :) :: R, X, C1, C2, C3, C4, C5
R = C1 * CSHIFT (X, 1, -1) &
  + C2 * CSHIFT (X, 2, -1) &
  + C3 * X &
  + C4 * CSHIFT (X, 2, +1) &
  + C5 * CSHIFT (X, 1, +1)
END
"""


def test_compile_cross5_from_fortran(benchmark):
    compiled = benchmark(compile_fortran, PAPER_SUBROUTINE)
    assert compiled.max_width == 8


def test_compile_diamond13_all_widths(benchmark):
    """The heaviest compilation: 15-way unrolled width-4 plans."""
    compiled = benchmark(compile_stencil, diamond13())
    assert compiled.plans[4].unroll == 15


def test_fast_executor_throughput(benchmark):
    params = MachineParams(num_nodes=16)
    machine = make_machine(16)
    pattern = cross5()
    compiled = compile_stencil(pattern, params)
    gshape = (256, 256)
    rng = np.random.default_rng(0)
    x = CMArray.from_numpy(
        "X", machine, rng.standard_normal(gshape).astype(np.float32)
    )
    coeffs = {
        name: CMArray.from_numpy(
            name, machine, rng.standard_normal(gshape).astype(np.float32)
        )
        for name in pattern.coefficient_names()
    }

    run = benchmark(apply_stencil, compiled, x, coeffs, "R")
    expected = reference_stencil(
        pattern,
        x.to_numpy(),
        {name: c.to_numpy() for name, c in coeffs.items()},
    )
    np.testing.assert_array_equal(run.result.to_numpy(), expected)


def test_rs_verify_overhead_bounded():
    """Static verification must stay cheap enough to leave on in CI.

    Compiling diamond13 (the heaviest gallery compilation) with
    ``RS_VERIFY=1`` may cost at most 2x the unverified compile.
    Measured min-of-N on fresh caches so memoization does not hide the
    verifier behind a cache hit.
    """
    import os
    import time

    from repro.compiler.driver import clear_compile_cache

    def min_time(repeats=3):
        best = float("inf")
        for _ in range(repeats):
            clear_compile_cache()
            start = time.perf_counter()
            compile_stencil(diamond13())
            best = min(best, time.perf_counter() - start)
        return best

    had = os.environ.pop("RS_VERIFY", None)
    try:
        plain = min_time()
        os.environ["RS_VERIFY"] = "1"
        verified = min_time()
    finally:
        if had is None:
            os.environ.pop("RS_VERIFY", None)
        else:
            os.environ["RS_VERIFY"] = had
        clear_compile_cache()

    assert verified < 2.0 * plain, (
        f"RS_VERIFY compile took {verified:.4f}s vs {plain:.4f}s plain "
        f"({verified / plain:.2f}x; budget is 2x)"
    )


def test_exact_datapath_throughput(benchmark):
    """Cycle-stepped simulation speed on a small single-node problem."""
    params = MachineParams(num_nodes=1)
    machine = make_machine(1)
    pattern = cross5()
    compiled = compile_stencil(pattern, params)
    rng = np.random.default_rng(1)
    x = CMArray.from_numpy(
        "X", machine, rng.standard_normal((16, 16)).astype(np.float32)
    )
    coeffs = {
        name: CMArray.from_numpy(
            name, machine, rng.standard_normal((16, 16)).astype(np.float32)
        )
        for name in pattern.coefficient_names()
    }
    run = benchmark(apply_stencil, compiled, x, coeffs, "R", exact=True)
    assert run.exact
