"""Shared helpers for the benchmark harness.

Every file under benchmarks/ regenerates one artifact of the paper's
evaluation (a table, a figure, or a design-choice ablation).  The
pytest-benchmark fixture times the simulation harness itself; the
*reproduced numbers* (the paper's Mflops/Gflops figures) are attached to
``benchmark.extra_info`` and printed, and the shape claims (who wins, by
roughly what factor) are asserted.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.timing import RateReport, report  # noqa: E402
from repro.compiler.driver import compile_stencil  # noqa: E402
from repro.machine.machine import CM2  # noqa: E402
from repro.machine.params import MachineParams  # noqa: E402
from repro.runtime.cm_array import CMArray  # noqa: E402
from repro.runtime.stencil_op import apply_stencil  # noqa: E402


def make_machine(num_nodes=16, **overrides) -> CM2:
    return CM2(MachineParams(num_nodes=num_nodes, **overrides))


def stencil_run(
    pattern,
    subgrid,
    *,
    machine=None,
    iterations=100,
    with_data=False,
    seed=0,
):
    """Compile and run one results-table cell.

    ``subgrid`` is the per-node subgrid shape, as in the paper's table.
    """
    machine = machine or make_machine()
    params = machine.params
    gshape = (
        subgrid[0] * machine.grid_rows,
        subgrid[1] * machine.grid_cols,
    )
    compiled = compile_stencil(pattern, params)
    if with_data:
        rng = np.random.default_rng(seed)
        x = CMArray.from_numpy(
            "X", machine, rng.standard_normal(gshape).astype(np.float32)
        )
        coeffs = {
            name: CMArray.from_numpy(
                name,
                machine,
                rng.standard_normal(gshape).astype(np.float32),
            )
            for name in pattern.coefficient_names()
        }
    else:
        x = CMArray("X", machine, gshape)
        coeffs = {
            name: CMArray(name, machine, gshape)
            for name in pattern.coefficient_names()
        }
    return apply_stencil(compiled, x, coeffs, iterations=iterations)


def emit(benchmark, label, value):
    """Record a reproduced number both in the benchmark report and on
    stdout."""
    benchmark.extra_info[label] = value
    print(f"  {label}: {value}")
