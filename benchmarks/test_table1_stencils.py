"""T1: the section 7 results table, 16-node stencil groups.

Regenerates the paper's measured-Mflops / extrapolated-Gflops rows for
the four stencil groups over the per-node subgrid sizes the paper
sweeps, and asserts the table's shape: rates rise with subgrid size, the
5-point cross is the slowest group, the large stencils sustain the
8.8-12 Gflops band, and the best rows clear the title's 10-Gflops bar.

Group attribution (the pictograms are garbled in the source text; see
DESIGN.md): group 1 = cross5, group 2 = square9, group 3 = cross9,
group 4 = diamond13.
"""

import pytest

from conftest import make_machine, stencil_run, emit
from repro.analysis.tables import format_table
from repro.analysis.timing import report
from repro.stencil import gallery

SUBGRIDS = [(64, 64), (64, 128), (128, 128), (128, 256), (256, 256)]

#: Paper values (measured Mflops at 16 nodes) for comparison printing.
PAPER_MFLOPS = {
    ("cross5", (64, 128)): 44.6,
    ("cross5", (128, 256)): 69.5,
    ("cross5", (256, 256)): 72.8,
    ("square9", (64, 64)): 68.8,
    ("square9", (64, 128)): 91.7,
    ("square9", (128, 128)): 89.8,
    ("square9", (128, 256)): 86.7,
    ("square9", (256, 256)): 88.6,
    ("cross9", (64, 64)): 56.8,
    ("cross9", (64, 128)): 68.0,
    ("cross9", (128, 128)): 72.9,
    ("cross9", (128, 256)): 85.3,
    ("cross9", (256, 256)): 85.6,
    ("diamond13", (64, 64)): 71.6,
    ("diamond13", (64, 128)): 82.0,
    ("diamond13", (128, 128)): 87.7,
    ("diamond13", (128, 256)): 85.6,
    ("diamond13", (256, 256)): 85.9,
}


def sweep():
    """Run the whole table sweep; returns (reports, rates dict)."""
    reports = []
    rates = {}
    for pattern_fn in (
        gallery.cross5,
        gallery.square9,
        gallery.cross9,
        gallery.diamond13,
    ):
        for subgrid in SUBGRIDS:
            pattern = pattern_fn()
            run = stencil_run(pattern, subgrid, machine=make_machine())
            rep = report(run)
            reports.append(rep)
            rates[(pattern.name, subgrid)] = rep.measured_mflops
    return reports, rates


def test_table1_sixteen_node_groups(benchmark):
    reports, rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(reports))
    print()
    for key, paper in sorted(PAPER_MFLOPS.items()):
        ours = rates[key]
        emit(
            benchmark,
            f"{key[0]} {key[1][0]}x{key[1][1]} Mflops (paper {paper})",
            round(ours, 1),
        )

    # Shape claim 1: rates rise with per-node subgrid size (overhead
    # amortizes), per group.
    for pattern_fn in (gallery.cross5, gallery.square9, gallery.cross9,
                       gallery.diamond13):
        name = pattern_fn().name
        assert rates[(name, (256, 256))] > rates[(name, (64, 64))]

    # Shape claim 2: the 5-point cross is the slowest group at every size
    # (fewest flops per point over the same overheads).
    for subgrid in SUBGRIDS:
        others = [
            rates[(p().name, subgrid)]
            for p in (gallery.square9, gallery.cross9, gallery.diamond13)
        ]
        assert rates[("cross5", subgrid)] < min(others)

    # Shape claim 3: the large-stencil groups land in the paper's band
    # (extrapolated 7-13 Gflops; the paper's rows span 7.3-11.7).
    for name in ("square9", "cross9", "diamond13"):
        extrapolated = rates[(name, (256, 256))] * 128 / 1e3
        assert 7.0 < extrapolated < 13.0

    # Shape claim 4 (the title): the best stencil rows exceed 10 Gflops
    # when extrapolated to the full machine.
    best = max(rates.values()) * 128 / 1e3
    emit(benchmark, "best extrapolated Gflops", round(best, 2))
    assert best > 10.0


def test_table1_within_factor_of_paper(benchmark):
    """Every reproduced cell within 2x of the paper's (noisy) numbers."""
    _, rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    worst = 0.0
    for key, paper in PAPER_MFLOPS.items():
        ratio = rates[key] / paper
        worst = max(worst, abs(ratio - 1.0))
        assert 0.5 < ratio < 2.0, f"{key}: ours {rates[key]:.1f} vs paper {paper}"
    emit(benchmark, "worst relative deviation", round(worst, 3))
