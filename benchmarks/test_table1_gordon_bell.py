"""T1-GB: the Gordon Bell seismic rows of the results table.

Regenerates the 10-term kernel rows: the 16-node 128x256 / 256x256
extrapolation rows, the honest 2,048-node 64x128 runs, and the paper's
headline comparison -- the copy-based main loop (11.62 Gflops) versus the
3x-unrolled loop (14.88 Gflops, a 1.28x speedup).

Our kernel runs the 9-point cross at multistencil width 4 (width 8 needs
44 registers, more than the 31 available -- see EXPERIMENTS.md), so
absolute rates land below the paper's; the asserted shape is the
unrolled-over-copy win, the 2,048-node shortfall versus linear
extrapolation, and bit-identical physics between the two loops.
"""

import numpy as np
import pytest

from conftest import emit, make_machine
from repro.analysis.timing import extrapolate_mflops
from repro.apps.seismic import SeismicModel, ricker_wavelet

STEPS = 24

_CACHE = {}


def run_loops_cached(num_nodes, subgrid, steps=STEPS):
    """The 2,048-node sweeps are expensive; share them across tests."""
    key = (num_nodes, subgrid, steps)
    if key not in _CACHE:
        _CACHE[key] = run_loops(num_nodes, subgrid, steps)
    return _CACHE[key]


def run_loops(num_nodes, subgrid, steps=STEPS):
    """Run both main-loop formulations on identical initial data."""
    timings = {}
    fields = {}
    for runner in ("run_copy_loop", "run_unrolled_loop"):
        machine = make_machine(num_nodes)
        shape = (
            subgrid[0] * machine.grid_rows,
            subgrid[1] * machine.grid_cols,
        )
        rows = shape[0]
        model = SeismicModel(
            machine, shape, dt=0.001, dx=10.0, source=(rows // 4, shape[1] // 2)
        )
        model.set_initial_pulse(sigma=3.0)
        wavelet = ricker_wavelet(steps, 0.001)
        timing = getattr(model, runner)(steps, wavelet)
        timings[runner] = timing
        fields[runner] = model.wavefield()
    return timings, fields


def test_gordon_bell_sixteen_node_rows(benchmark):
    timings, fields = benchmark.pedantic(
        run_loops, args=(16, (128, 256)), rounds=1, iterations=1
    )
    copy = timings["run_copy_loop"]
    unrolled = timings["run_unrolled_loop"]
    np.testing.assert_array_equal(
        fields["run_copy_loop"], fields["run_unrolled_loop"]
    )
    copy_extrapolated = extrapolate_mflops(copy.mflops, 16, 2048) / 1e3
    unrolled_extrapolated = extrapolate_mflops(unrolled.mflops, 16, 2048) / 1e3
    print()
    emit(benchmark, "copy loop 16-node Mflops (paper 106.6)", round(copy.mflops, 1))
    emit(
        benchmark,
        "copy loop extrapolated Gflops (paper 13.65)",
        round(copy_extrapolated, 2),
    )
    emit(
        benchmark,
        "unrolled extrapolated Gflops (paper 14.95)",
        round(unrolled_extrapolated, 2),
    )
    speedup = unrolled.gflops / copy.gflops
    emit(benchmark, "unrolled/copy speedup (paper 1.28)", round(speedup, 3))
    # Shape: the unrolled loop wins by eliminating the two copies, by a
    # factor in the paper's neighbourhood.
    assert 1.05 < speedup < 1.6
    # Same useful flops either way: the win is pure overhead removal.
    assert unrolled.useful_flops == copy.useful_flops


def test_gordon_bell_full_machine_rows(benchmark):
    """The 2,048-node runs with 64x128 per-node subgrids."""
    timings, _ = benchmark.pedantic(
        run_loops_cached, args=(2048, (64, 128), 3), rounds=1, iterations=1
    )
    copy = timings["run_copy_loop"]
    unrolled = timings["run_unrolled_loop"]
    print()
    emit(benchmark, "copy loop 2048-node Gflops (paper 11.62)", round(copy.gflops, 2))
    emit(
        benchmark,
        "unrolled 2048-node Gflops (paper 14.88)",
        round(unrolled.gflops, 2),
    )
    assert unrolled.gflops > copy.gflops


def test_full_run_elapsed_times(benchmark):
    """The table's long rows: 35,000 copy-loop iterations in 1919.41 s
    and 38,001 unrolled iterations in 1627.59 s on 2,048 nodes.  We
    model the same runs from the per-step time; absolute agreement
    tracks the rate ratio (~0.45x, see EXPERIMENTS.md), the asserted
    shape is that the unrolled production run finishes sooner despite
    running 3,001 more steps -- the whole point of the unrolling."""
    timings, _ = benchmark.pedantic(
        run_loops_cached, args=(2048, (64, 128), 3), rounds=1, iterations=1
    )
    per_step = {
        runner: timing.elapsed_seconds / timing.steps
        for runner, timing in timings.items()
    }
    copy_elapsed = per_step["run_copy_loop"] * 35_000
    unrolled_elapsed = per_step["run_unrolled_loop"] * 38_001
    print()
    emit(benchmark, "copy 35000-step elapsed s (paper 1919.41)", round(copy_elapsed, 1))
    emit(
        benchmark,
        "unrolled 38001-step elapsed s (paper 1627.59)",
        round(unrolled_elapsed, 1),
    )
    # Shape: unrolled finishes sooner despite 3,001 extra steps.
    assert unrolled_elapsed < copy_elapsed
    # Absolutes within the documented rate gap (ours ~2x slower).
    assert 1000 < copy_elapsed < 4 * 1919.41
    assert 1000 < unrolled_elapsed < 4 * 1627.59


def test_extrapolation_exceeds_honest_full_machine_rate(benchmark):
    """The paper's own gap: the 128x256-subgrid extrapolation (13.65)
    exceeds what the 2,048-node machine measured with its smaller
    64x128 subgrids (11.62), because the single front end's overhead
    does not scale away and smaller subgrids amortize it less."""

    def both():
        sixteen, _ = run_loops(16, (128, 256), steps=3)
        full, _ = run_loops_cached(2048, (64, 128), 3)
        return sixteen, full

    sixteen, full = benchmark.pedantic(both, rounds=1, iterations=1)
    extrapolated = (
        extrapolate_mflops(sixteen["run_copy_loop"].mflops, 16, 2048) / 1e3
    )
    measured = full["run_copy_loop"].gflops
    print()
    emit(benchmark, "extrapolated Gflops", round(extrapolated, 2))
    emit(benchmark, "honest 2048-node Gflops", round(measured, 2))
    assert measured < extrapolated
