"""F1: Figure 1 -- division of a 256x256 array among 16 nodes.

Regenerates the figure's block table and asserts the index ranges the
paper prints.
"""

import pytest

from conftest import emit, make_machine
from repro.machine.geometry import NodeCoord
from repro.runtime.decomposition import Decomposition

#: Every range printed in the paper's Figure 1 (the OCR shows a subset;
#: these are the unambiguous ones).
PAPER_RANGES = {
    (0, 0): "A(1:64,1:64)",
    (1, 1): "A(65:128,65:128)",
    (1, 2): "A(65:128,129:192)",
    (2, 1): "A(129:192,65:128)",
    (2, 2): "A(129:192,129:192)",
    (3, 1): "A(193:256,65:128)",
    (3, 2): "A(193:256,129:192)",
    (3, 3): "A(193:256,193:256)",
}


def build():
    machine = make_machine(16)
    return Decomposition((256, 256), machine)


def test_figure1_division(benchmark):
    decomposition = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(decomposition.figure1_text())
    assert decomposition.subgrid_shape == (64, 64)
    for (row, col), expected in PAPER_RANGES.items():
        actual = decomposition.block(NodeCoord(row, col)).fortran_ranges()
        assert actual == expected, f"node ({row},{col}): {actual}"
    emit(benchmark, "subgrid shape", "64x64")
    emit(benchmark, "blocks verified against Figure 1", len(PAPER_RANGES))


def test_figure1_scatter_gather_identity(benchmark):
    """The decomposition's data movement is lossless."""
    import numpy as np

    decomposition = build()

    def round_trip():
        array = np.arange(256 * 256, dtype=np.float32).reshape(256, 256)
        return decomposition.gather(decomposition.scatter(array)), array

    gathered, original = benchmark.pedantic(round_trip, rounds=1, iterations=1)
    np.testing.assert_array_equal(gathered, original)
