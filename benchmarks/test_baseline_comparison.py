"""B1: the convolution compiler vs its two baselines.

* Stock slicewise CM Fortran: "routinely allows Fortran users to achieve
  execution rates of around 4 gigaflops" (section 3) -- the convolution
  compiler's >2.5x starting point.
* The 1989 hand-coded library: the 5.6-Gflops Gordon Bell code whose
  techniques this compiler generalizes and improves.
"""

import pytest

from conftest import emit, make_machine, stencil_run
from repro.analysis.timing import extrapolate_mflops
from repro.baseline.cmfortran import run_cmfortran
from repro.baseline.handlib import compile_library_routine, handlib_params
from repro.machine.params import MachineParams
from repro.runtime.strips import StripSchedule
from repro.stencil.gallery import cross5, cross9


def compare(pattern, subgrid=(128, 256)):
    """Run both paths at 16 nodes and extrapolate to the full machine
    (per-node time is machine-size independent; the paper's method)."""
    params = MachineParams(num_nodes=16)
    compiled_run = stencil_run(
        pattern, subgrid, machine=make_machine(16), iterations=100
    )
    baseline = run_cmfortran(pattern, subgrid, params, iterations=100)
    compiled_gflops = extrapolate_mflops(compiled_run.mflops, 16, 2048) / 1e3
    baseline_gflops = extrapolate_mflops(baseline.mflops, 16, 2048) / 1e3
    return compiled_gflops, baseline_gflops


def test_compiler_vs_stock_cmfortran(benchmark):
    compiled_gflops, baseline_gflops = benchmark.pedantic(
        compare, args=(cross9(),), rounds=1, iterations=1
    )
    print()
    emit(benchmark, "convolution compiler Gflops", round(compiled_gflops, 2))
    emit(
        benchmark,
        "stock CM Fortran Gflops (paper: ~4)",
        round(baseline_gflops, 2),
    )
    # The stock path lands in the paper's "around 4 gigaflops" band.
    assert 2.0 < baseline_gflops < 6.0
    # The convolution compiler's win over it is >2x.
    assert compiled_gflops > 2.0 * baseline_gflops


def test_compiler_vs_1989_hand_library(benchmark):
    """The same cross5 computation, the 1989 way vs the 1990 way."""

    def both():
        params = MachineParams(num_nodes=16)
        subgrid = (128, 256)
        new = stencil_run(
            cross5(), subgrid, machine=make_machine(16), iterations=100
        )
        old_compiled = compile_library_routine("cross5", params)
        old_params = handlib_params(params)
        cycles = StripSchedule(old_compiled, subgrid).compute_cycles(
            old_params
        )
        half_strips = StripSchedule(old_compiled, subgrid).num_half_strips
        comm = new.comm.cycles  # identical exchange either way
        seconds = old_params.seconds(cycles + comm) + old_params.host_overhead_s(
            half_strips
        )
        flops = (
            subgrid[0] * subgrid[1] * 16 * cross5().useful_flops_per_point()
        )
        old_mflops = flops / seconds / 1e6
        new_gflops = extrapolate_mflops(new.mflops, 16, 2048) / 1e3
        old_gflops = extrapolate_mflops(old_mflops, 16, 2048) / 1e3
        return new_gflops, old_gflops

    new_gflops, old_gflops = benchmark.pedantic(both, rounds=1, iterations=1)
    print()
    emit(benchmark, "1990 compiled cross5 Gflops", round(new_gflops, 2))
    emit(benchmark, "1989 hand library Gflops", round(old_gflops, 2))
    ratio = new_gflops / old_gflops
    emit(benchmark, "improvement over 1989 library", round(ratio, 2))
    # The paper's lineage: the compiler generalizes *and improves* the
    # hand-coded techniques.
    assert ratio > 1.1


def test_library_coverage_motivation(benchmark):
    """Section 9: the stencil class is too large for a routine menu --
    the library serves the crosses but none of the paper's other
    displayed patterns."""
    from repro.baseline.handlib import UnsupportedPattern

    def coverage():
        served, refused = [], []
        for name in ("cross5", "cross9", "square9", "diamond13",
                      "asymmetric5", "border_demo"):
            try:
                compile_library_routine(name)
                served.append(name)
            except UnsupportedPattern:
                refused.append(name)
        return served, refused

    served, refused = benchmark.pedantic(coverage, rounds=1, iterations=1)
    assert served == ["cross5", "cross9"]
    assert len(refused) == 4
    emit(benchmark, "library-served patterns", ",".join(served))
    emit(benchmark, "compiler-only patterns", ",".join(refused))
