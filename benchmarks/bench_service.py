"""Guard the multi-tenant service's throughput, fairness, and identity.

Four properties, enforced with nonzero exit status:

1. **Bit-identity.**  Every job run through the scheduler on a carved
   partition produces float32 results byte-identical to the same job
   run solo on a private machine of the same node-grid shape.
2. **Concurrency pays.**  Four tenants splitting the 4x4 node grid into
   four 2x2 partitions must beat a single tenant running the same jobs
   back to back on one 2x2 partition by at least 1.5x in aggregate
   modeled throughput (useful flops over makespan) -- measured in cycle
   terms, so the gate is deterministic, not wall-clock noise.
3. **Fairness.**  Jain's index over the four equal tenants' cycle
   allocations must exceed 0.99 (they run identical work).
4. **The ledger reconciles.**  Every per-tenant counter and every
   per-partition busy time re-derives exactly from the job records --
   no concurrent charge lost or double-counted.

Run:  python benchmarks/bench_service.py
Writes BENCH_service.json at the repository root.
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.machine.params import MachineParams  # noqa: E402
from repro.service import (  # noqa: E402
    MachinePool,
    Scheduler,
    ServiceAccounts,
    StencilJob,
    solo_run,
)

NODES = 16
GRID = (32, 32)
PARTITION = (2, 2)
TENANTS = ("alice", "bob", "carol", "dave")
PATTERNS = ("cross5", "cross9", "square9", "diamond13")
JOBS_PER_TENANT = 3
MIN_SPEEDUP = 1.5
MIN_FAIRNESS = 0.99


def build_jobs():
    """Four tenants x three jobs, every tenant the same workload shape.

    Each tenant rotates through the same three (pattern, boundary,
    iterations) triples with tenant-distinct seeds, so the fairness gate
    is meaningful: equal work should earn equal cycles.
    """
    triples = [
        (PATTERNS[0], "torus", 4),
        (PATTERNS[2], "fill", 3),
        (PATTERNS[3], "torus", 2),
    ]
    jobs = []
    for t_index, tenant in enumerate(TENANTS):
        for j_index, (pattern, boundary, iterations) in enumerate(triples):
            jobs.append(
                StencilJob(
                    tenant=tenant,
                    pattern=pattern,
                    grid_shape=GRID,
                    boundary=boundary,
                    iterations=iterations,
                    seed=100 * t_index + j_index,
                    partition_shape=PARTITION,
                )
            )
    return jobs


def run_service(jobs, params):
    pool = MachinePool(params)
    with Scheduler(pool) as scheduler:
        scheduler.submit_all(jobs)
        results = scheduler.drain(timeout=600)
    return results, scheduler.accounts


def run_single_tenant(jobs, params):
    """The same jobs, one tenant, back to back on one partition.

    The single-tenant baseline holds one 2x2 partition and runs its
    jobs sequentially, so its ledger's makespan is the serial sum --
    exactly what a tenant without the service would pay.
    """
    accounts = ServiceAccounts()
    for job in jobs:
        result = solo_run(job, params=params, shape=PARTITION)
        accounts.charge(result)
    return accounts


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_service.json",
    )
    args = parser.parse_args(argv)

    params = MachineParams(num_nodes=NODES)
    jobs = build_jobs()

    wall_start = time.perf_counter()
    results, accounts = run_service(jobs, params)
    service_wall = time.perf_counter() - wall_start

    mismatches = []
    for result in results:
        reference = solo_run(result.job, params=params, shape=PARTITION)
        if not result.identical_to(reference):
            mismatches.append(result.job.label)
    print(
        f"bit-identity : {len(results) - len(mismatches)}/{len(results)} "
        f"scheduled jobs match their solo runs"
    )

    # The single-tenant baseline: alice's three jobs, serial.
    solo_accounts = run_single_tenant(
        [j for j in jobs if j.tenant == TENANTS[0]], params
    )
    single_mflops = solo_accounts.aggregate_mflops
    multi_mflops = accounts.aggregate_mflops
    throughput_ratio = (
        multi_mflops / single_mflops if single_mflops > 0 else 0.0
    )
    fairness = accounts.fairness()
    reconciled = accounts.reconcile()
    print(
        f"single tenant: {single_mflops:8.1f} Mflops "
        f"(makespan {solo_accounts.makespan_seconds:.4f} s modeled)"
    )
    print(
        f"four tenants : {multi_mflops:8.1f} Mflops "
        f"(makespan {accounts.makespan_seconds:.4f} s modeled, "
        f"{service_wall * 1e3:.0f} ms host)"
    )
    print(
        f"throughput   : {throughput_ratio:.2f}x single-tenant "
        f"(bar {MIN_SPEEDUP:.1f}x)   fairness {fairness:.4f} "
        f"(bar {MIN_FAIRNESS})   "
        f"ledger {'reconciled' if reconciled else 'OUT OF BALANCE'}"
    )

    payload = {
        "benchmark": "service",
        "nodes": NODES,
        "grid": list(GRID),
        "partition": list(PARTITION),
        "tenants": list(TENANTS),
        "jobs_per_tenant": JOBS_PER_TENANT,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "bit_identical": not mismatches,
        "mismatches": mismatches,
        "single_tenant_mflops": single_mflops,
        "multi_tenant_mflops": multi_mflops,
        "throughput_ratio": throughput_ratio,
        "throughput_bar": MIN_SPEEDUP,
        "fairness": fairness,
        "fairness_bar": MIN_FAIRNESS,
        "concurrency_speedup": accounts.concurrency_speedup,
        "reconciled": reconciled,
        "service_wall_seconds": service_wall,
        "ledger": accounts.to_dict(),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    if mismatches:
        failures.append(
            f"{len(mismatches)} scheduled job(s) diverge from solo runs: "
            + ", ".join(mismatches)
        )
    if throughput_ratio < MIN_SPEEDUP:
        failures.append(
            f"multi-tenant throughput {throughput_ratio:.2f}x "
            f"< {MIN_SPEEDUP:.1f}x single-tenant bar"
        )
    if fairness < MIN_FAIRNESS:
        failures.append(
            f"fairness {fairness:.4f} < {MIN_FAIRNESS} bar for equal tenants"
        )
    if not reconciled:
        failures.append("service ledger does not reconcile")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
