"""Guard the cost of surviving hard faults.

Three properties, enforced with nonzero exit status:

1. **Guard-off is free.**  A run without an injector produces results
   byte-identical to a guarded no-fault run on a spared machine -- the
   resilience machinery never perturbs the arithmetic, only the
   accounting.
2. **No-fault guarded overhead < 5%.**  With spares configured and the
   default :class:`ResiliencePolicy`, the genesis checkpoint plus the
   periodic checkpoint cadence must cost less than 5% of the fault-free
   run's modeled cycles (comm + compute).
3. **The mini campaign survives.**  A seeded single-pattern chaos
   campaign (hard faults included) completes with 100% bit-identical
   survival, zero silent corruptions, and exact cost reconciliation.

Run:  python benchmarks/bench_hard_faults.py
Writes BENCH_hard_faults.json at the repository root.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.chaos import run_campaign, run_trial  # noqa: E402
from repro.compiler.driver import compile_stencil  # noqa: E402
from repro.machine.machine import CM2  # noqa: E402
from repro.machine.params import MachineParams  # noqa: E402
from repro.runtime.cm_array import CMArray  # noqa: E402
from repro.runtime.faults import (  # noqa: E402
    FaultInjector,
    FaultKind,
    HardFaultSpec,
)
from repro.runtime.stencil_op import apply_stencil  # noqa: E402
from repro.stencil.gallery import cross  # noqa: E402

PATTERN = cross(2)  # the 9-point Gordon Bell cross
NODES = 16
SUBGRID = (32, 32)
ITERATIONS = 24
SPARES = 2
MAX_OVERHEAD = 0.05
CAMPAIGN_SEEDS = (1, 2)
CAMPAIGN_PATTERNS = ("cross5",)


def build_problem(*, spares, seed=0):
    params = MachineParams(num_nodes=NODES)
    machine = CM2(params, spares=spares)
    grid_rows, grid_cols = machine.shape
    shape = (grid_rows * SUBGRID[0], grid_cols * SUBGRID[1])
    compiled = compile_stencil(PATTERN, params)
    rng = np.random.default_rng(seed)
    x = CMArray.from_numpy(
        "X", machine, rng.standard_normal(shape).astype(np.float32)
    )
    coeffs = {
        name: CMArray.from_numpy(
            name, machine, rng.standard_normal(shape).astype(np.float32)
        )
        for name in PATTERN.coefficient_names()
    }
    return compiled, x, coeffs


def timed_apply(compiled, x, coeffs, result, **kwargs):
    start = time.perf_counter()
    run = apply_stencil(
        compiled, x, coeffs, result, iterations=ITERATIONS, **kwargs
    )
    return time.perf_counter() - start, run


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_hard_faults.json",
    )
    args = parser.parse_args(argv)

    # 1 + 2: guard-off vs guarded no-fault, bits and modeled cycles.
    compiled, x, coeffs = build_problem(spares=0)
    plain_wall, plain = timed_apply(compiled, x, coeffs, "R_PLAIN")
    compiled2, x2, coeffs2 = build_problem(spares=SPARES)
    guarded_wall, guarded = timed_apply(
        compiled2, x2, coeffs2, "R_GUARDED",
        faults=FaultInjector(seed=1, rates={}),
    )
    identical = bool(
        np.array_equal(plain.result.to_numpy(), guarded.result.to_numpy())
    )
    plain_cycles = plain.comm_cycles_total + plain.compute_cycles_total
    guarded_cycles = (
        guarded.comm_cycles_total + guarded.compute_cycles_total
    )
    overhead = (guarded_cycles - plain_cycles) / plain_cycles
    stats = guarded.fault_stats
    print(
        f"guard off : {plain_cycles:>12} cycles  "
        f"({plain_wall * 1e3:6.1f} ms host)"
    )
    print(
        f"guard on  : {guarded_cycles:>12} cycles  "
        f"({guarded_wall * 1e3:6.1f} ms host)  "
        f"{stats.checkpoints} checkpoints"
    )
    print(
        f"overhead  : {100 * overhead:.2f}% modeled "
        f"(bar {100 * MAX_OVERHEAD:.0f}%), "
        f"bit-identical: {identical}"
    )

    # 3: the mini survival campaign, hard-fault kinds included.
    campaign_start = time.perf_counter()
    report = run_campaign(
        seeds=CAMPAIGN_SEEDS, patterns=CAMPAIGN_PATTERNS
    )
    # Random rates over a handful of exchanges do not guarantee a node
    # actually dies, so the hard-fault guarantee rides on scheduled
    # kills: one dead node and one dead link per execution mode.
    scheduled = []
    for mode, mode_kwargs in (
        ("blocked", {"block_depth": 3}),
        ("fast", {}),
        ("exact", {"exact": True}),
    ):
        for spec in (
            HardFaultSpec(FaultKind.NODE_DEAD, 2, 1, 1),
            HardFaultSpec(FaultKind.LINK_DOWN, 1, 0, 1, direction="E"),
        ):
            scheduled.append(
                run_trial(
                    "cross5", "torus", mode, dict(mode_kwargs),
                    seed=1, rates={}, schedule=[spec],
                )
            )
    report.trials.extend(scheduled)
    campaign_wall = time.perf_counter() - campaign_start
    print(report.describe())

    payload = {
        "benchmark": "hard_faults",
        "pattern": PATTERN.name,
        "nodes": NODES,
        "subgrid": list(SUBGRID),
        "iterations": ITERATIONS,
        "spares": SPARES,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "guard_off_cycles": plain_cycles,
        "guarded_cycles": guarded_cycles,
        "guarded_checkpoints": stats.checkpoints,
        "overhead": overhead,
        "overhead_bar": MAX_OVERHEAD,
        "bit_identical": identical,
        "campaign_seconds": campaign_wall,
        "campaign": report.to_dict(),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    if not identical:
        failures.append("guarded no-fault run is not byte-identical")
    if overhead >= MAX_OVERHEAD:
        failures.append(
            f"no-fault guarded overhead {100 * overhead:.2f}% "
            f">= {100 * MAX_OVERHEAD:.0f}% bar"
        )
    if not report.ok:
        failures.append(
            f"campaign not clean: {report.num_survived}/"
            f"{report.num_trials} survived, "
            f"{report.silent_corruptions} silent corruptions, "
            f"{report.unreconciled} unreconciled"
        )
    if sum(t.stats.remaps for t in scheduled) < 3:
        failures.append("a scheduled node kill did not end in a remap")
    if sum(t.stats.reroutes for t in scheduled) < 3:
        failures.append("a scheduled link kill did not end in a reroute")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
