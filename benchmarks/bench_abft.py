"""Guard the cost and the guarantees of algorithm-based fault tolerance.

Three properties, enforced with nonzero exit status:

1. **ABFT-on is bit-identical.**  A no-fault run with
   ``ResiliencePolicy(abft=True)`` produces results byte-identical to
   the guarded baseline -- the checksum seal/verify passes never touch
   the arithmetic, only the accounting.
2. **No-fault ABFT overhead < 5%.**  Relative to the guarded no-fault
   baseline (same checkpoints, same guard bookkeeping), the extra
   modeled cycles of sealing and verifying every iteration must stay
   under 5%.
3. **The mini SDC campaign heals forward.**  A seeded campaign of
   single-cell bit-flips completes with 100% detection, every strike
   forward-corrected (zero rollbacks, zero replayed iterations), zero
   silent escapes, and exact cycle reconciliation including the
   dedicated ``abft_cycles`` bucket; multi-cell strikes take the
   rollback ladder or end in a typed error.

Run:  python benchmarks/bench_abft.py
Writes BENCH_abft.json at the repository root.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.chaos import run_sdc_campaign  # noqa: E402
from repro.compiler.driver import compile_stencil  # noqa: E402
from repro.machine.machine import CM2  # noqa: E402
from repro.machine.params import MachineParams  # noqa: E402
from repro.runtime.cm_array import CMArray  # noqa: E402
from repro.runtime.faults import (  # noqa: E402
    FaultInjector,
    ResiliencePolicy,
)
from repro.runtime.stencil_op import apply_stencil  # noqa: E402
from repro.stencil.gallery import cross  # noqa: E402

PATTERN = cross(2)  # the 9-point Gordon Bell cross
NODES = 16
SUBGRID = (32, 32)
ITERATIONS = 24
MAX_OVERHEAD = 0.05
CAMPAIGN_SEEDS = (1, 2, 3)


def build_problem(seed=0):
    params = MachineParams(num_nodes=NODES)
    machine = CM2(params)
    grid_rows, grid_cols = machine.shape
    shape = (grid_rows * SUBGRID[0], grid_cols * SUBGRID[1])
    compiled = compile_stencil(PATTERN, params)
    rng = np.random.default_rng(seed)
    x = CMArray.from_numpy(
        "X", machine, rng.standard_normal(shape).astype(np.float32)
    )
    coeffs = {
        name: CMArray.from_numpy(
            name, machine, rng.standard_normal(shape).astype(np.float32)
        )
        for name in PATTERN.coefficient_names()
    }
    return compiled, x, coeffs


def timed_apply(compiled, x, coeffs, result, **kwargs):
    start = time.perf_counter()
    run = apply_stencil(
        compiled, x, coeffs, result, iterations=ITERATIONS, **kwargs
    )
    return time.perf_counter() - start, run


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_abft.json",
    )
    args = parser.parse_args(argv)

    # 1 + 2: guarded baseline vs guarded + ABFT, no faults anywhere.
    # Both runs carry the same checkpoint cadence, so the delta is the
    # seal/verify overhead alone.
    compiled, x, coeffs = build_problem()
    base_wall, base = timed_apply(
        compiled, x, coeffs, "R_BASE",
        faults=FaultInjector(seed=1, rates={}),
        resilience=ResiliencePolicy(),
    )
    compiled2, x2, coeffs2 = build_problem()
    abft_wall, abft = timed_apply(
        compiled2, x2, coeffs2, "R_ABFT",
        faults=FaultInjector(seed=1, rates={}),
        resilience=ResiliencePolicy(abft=True),
    )
    identical = bool(
        np.array_equal(base.result.to_numpy(), abft.result.to_numpy())
    )
    base_cycles = base.comm_cycles_total + base.compute_cycles_total
    abft_cycles = abft.comm_cycles_total + abft.compute_cycles_total
    overhead = (abft_cycles - base_cycles) / base_cycles
    stats = abft.fault_stats
    print(
        f"guarded   : {base_cycles:>12} cycles  "
        f"({base_wall * 1e3:6.1f} ms host)"
    )
    print(
        f"+ abft    : {abft_cycles:>12} cycles  "
        f"({abft_wall * 1e3:6.1f} ms host)  "
        f"{stats.abft_seals} seals, {stats.abft_verifies} verifies"
    )
    print(
        f"overhead  : {100 * overhead:.2f}% modeled "
        f"(bar {100 * MAX_OVERHEAD:.0f}%), "
        f"bit-identical: {identical}"
    )
    exact_bucket = abft_cycles == base_cycles + stats.abft_cycles

    # 3: the mini SDC campaign (single-cell, batched, multi-cell).
    campaign_start = time.perf_counter()
    report = run_sdc_campaign(seeds=CAMPAIGN_SEEDS)
    campaign_wall = time.perf_counter() - campaign_start
    print(report.describe())
    singles = report.single_cell_trials
    single_replays = sum(t.replays for t in singles)
    single_rollbacks = sum(t.rollbacks for t in singles)

    payload = {
        "benchmark": "abft",
        "pattern": PATTERN.name,
        "nodes": NODES,
        "subgrid": list(SUBGRID),
        "iterations": ITERATIONS,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "baseline_cycles": base_cycles,
        "abft_cycles_total": abft_cycles,
        "abft_seal_verify_cycles": stats.abft_cycles,
        "abft_seals": stats.abft_seals,
        "abft_verifies": stats.abft_verifies,
        "overhead": overhead,
        "overhead_bar": MAX_OVERHEAD,
        "bit_identical": identical,
        "overhead_is_exactly_the_abft_bucket": exact_bucket,
        "campaign_seconds": campaign_wall,
        "campaign": report.to_dict(),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    if not identical:
        failures.append("abft no-fault run is not byte-identical")
    if overhead >= MAX_OVERHEAD:
        failures.append(
            f"no-fault abft overhead {100 * overhead:.2f}% "
            f">= {100 * MAX_OVERHEAD:.0f}% bar"
        )
    if not exact_bucket:
        failures.append(
            "abft overhead does not equal the abft_cycles bucket"
        )
    if not report.ok:
        failures.append(
            f"sdc campaign not clean: "
            f"{report.forward_corrected}/{len(singles)} "
            f"forward-corrected, "
            f"{report.silent_corruptions} silent corruptions, "
            f"{report.unreconciled} unreconciled"
        )
    if report.silent_corruptions:
        failures.append("a silent corruption escaped the verifier")
    if single_replays or single_rollbacks:
        failures.append(
            f"single-cell damage used the ladder: "
            f"{single_rollbacks} rollbacks, "
            f"{single_replays} replayed iterations"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
