"""A2: multistencil register reuse vs the naive schedule (section 5.3).

The multistencil's point: loading 26 elements instead of 40 for eight
cross5 results, by using each loaded element many times.  The ablation
runs the same subgrid compiled at width 8 (full reuse) and at width 1
(the degenerate multistencil: no reuse across results) and compares
loads and cycles.
"""

import pytest

from conftest import emit, make_machine, stencil_run
from repro.compiler.plan import compile_pattern
from repro.runtime.strips import StripSchedule
from repro.stencil.gallery import cross5, diamond13


def ablate(pattern, subgrid):
    params = make_machine(16).params
    wide = compile_pattern(pattern, params)
    narrow = compile_pattern(pattern, params, widths=(1,))
    wide_cycles = StripSchedule(wide, subgrid).compute_cycles(params)
    narrow_cycles = StripSchedule(narrow, subgrid).compute_cycles(params)
    # Steady-state loads per result at each width.
    best = wide.plans[wide.max_width]
    w1 = narrow.plans[1]
    wide_loads = best.steady[0].num_loads / best.width
    narrow_loads = w1.steady[0].num_loads / 1
    return {
        "wide_cycles": wide_cycles,
        "narrow_cycles": narrow_cycles,
        "wide_loads_per_result": wide_loads,
        "narrow_loads_per_result": narrow_loads,
        "max_width": wide.max_width,
    }


def test_multistencil_reuse_cross5(benchmark):
    result = benchmark.pedantic(
        ablate, args=(cross5(), (64, 64)), rounds=1, iterations=1
    )
    print()
    speedup = result["narrow_cycles"] / result["wide_cycles"]
    emit(benchmark, "width-8 loads/result", result["wide_loads_per_result"])
    emit(benchmark, "width-1 loads/result", result["narrow_loads_per_result"])
    emit(benchmark, "multistencil speedup", round(speedup, 2))
    # Steady-state loads per result: 10/8 vs 3 (the width-1 leading edge
    # still reuses vertically; the pure naive 5 loads/result would be
    # worse still).
    assert result["wide_loads_per_result"] < result["narrow_loads_per_result"]
    # The whole-subgrid win is large: fewer loads, fewer line overheads,
    # fewer half-strip dispatches.
    assert speedup > 2.0


def test_multistencil_reuse_diamond13(benchmark):
    result = benchmark.pedantic(
        ablate, args=(diamond13(), (64, 64)), rounds=1, iterations=1
    )
    speedup = result["narrow_cycles"] / result["wide_cycles"]
    emit(benchmark, "best width", result["max_width"])
    emit(benchmark, "multistencil speedup", round(speedup, 2))
    assert result["max_width"] == 4  # width 8 rejected for registers
    assert speedup > 1.5


def test_wider_is_always_at_least_as_fast(benchmark):
    """Monotonicity: restricting the width menu never speeds things up."""
    params = make_machine(16).params

    def sweep():
        out = {}
        for widths in ((8, 4, 2, 1), (4, 2, 1), (2, 1), (1,)):
            compiled = compile_pattern(cross5(), params, widths=widths)
            out[widths] = StripSchedule(compiled, (64, 64)).compute_cycles(
                params
            )
        return out

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ordered = [costs[w] for w in ((8, 4, 2, 1), (4, 2, 1), (2, 1), (1,))]
    assert ordered == sorted(ordered)
    for widths, cycles in costs.items():
        emit(benchmark, f"widths {widths}", cycles)
