"""Measure the batched whole-machine executor against the per-node loop.

Times ``apply_stencil`` host wall-clock (the simulator's own throughput,
not the modeled CM-2 time) with the per-node fast path and the batched
stacked path across machine sizes, verifying bit-identical results at
every size.  The per-node loop does O(taps) numpy operations per node;
the batched path does O(taps) for the whole machine, so its advantage
grows with the node count -- the acceptance bar is 5x at 1,024 nodes
(a 32x32 node grid).

Run:  python benchmarks/bench_batched_executor.py
Writes BENCH_batched_executor.json at the repository root and exits
nonzero if the batched path is not faster everywhere.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compiler.driver import compile_stencil  # noqa: E402
from repro.machine.machine import CM2  # noqa: E402
from repro.machine.params import MachineParams  # noqa: E402
from repro.runtime.cm_array import CMArray  # noqa: E402
from repro.runtime.stencil_op import apply_stencil  # noqa: E402
from repro.stencil.gallery import cross  # noqa: E402

SUBGRID = (16, 16)
SUBGRID_SWEEP = ((16, 16), (32, 32), (64, 64))
PATTERN = cross(2)  # the 9-point Gordon Bell cross
DEFAULT_SIZES = (16, 64, 256, 1024)
REPEATS = 3
REQUIRED_SPEEDUP_AT_1024 = 5.0


def time_mode(compiled, x, coeffs, result, *, batched, repeats=REPEATS):
    best = float("inf")
    run = None
    for _ in range(repeats):
        start = time.perf_counter()
        run = apply_stencil(compiled, x, coeffs, result, batched=batched)
        best = min(best, time.perf_counter() - start)
    return best, run


def bench_size(num_nodes, subgrid, rng):
    params = MachineParams(num_nodes=num_nodes)
    machine = CM2(params)
    grid_rows, grid_cols = machine.shape
    shape = (grid_rows * subgrid[0], grid_cols * subgrid[1])
    compiled = compile_stencil(PATTERN, params)

    x = CMArray.from_numpy(
        "X", machine, rng.standard_normal(shape).astype(np.float32)
    )
    coeffs = {
        name: CMArray.from_numpy(
            name, machine, rng.standard_normal(shape).astype(np.float32)
        )
        for name in PATTERN.coefficient_names()
    }
    # Iterated runs and sweeps reuse their arrays; so does the
    # measurement (a fresh result every call would mostly time
    # allocation, in both modes).
    r_node = CMArray("R_NODE", machine, shape)
    r_batch = CMArray("R_BATCH", machine, shape)

    # Warm up both paths (allocations, compilation, cache effects).
    _, warm_node = time_mode(
        compiled, x, coeffs, r_node, batched=False, repeats=1
    )
    node_bits = warm_node.result.to_numpy()
    _, warm_batch = time_mode(
        compiled, x, coeffs, r_batch, batched=True, repeats=1
    )
    assert warm_batch.batched, "batched path did not run"
    identical = bool(
        np.array_equal(warm_batch.result.to_numpy(), node_bits)
    )

    per_node_s, _ = time_mode(compiled, x, coeffs, r_node, batched=False)
    batched_s, _ = time_mode(compiled, x, coeffs, r_batch, batched=True)
    return {
        "num_nodes": num_nodes,
        "grid": [grid_rows, grid_cols],
        "subgrid": list(subgrid),
        "global_shape": list(shape),
        "per_node_s": per_node_s,
        "batched_s": batched_s,
        "speedup": per_node_s / batched_s,
        "identical": identical,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="machine sizes (node counts) to measure",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_batched_executor.json",
    )
    args = parser.parse_args(argv)

    rng = np.random.default_rng(1991)

    def show(row):
        print(
            f"{row['num_nodes']:5d} nodes ({row['grid'][0]}x{row['grid'][1]}) "
            f"x {row['subgrid'][0]}x{row['subgrid'][1]} subgrids: "
            f"per-node {row['per_node_s'] * 1e3:8.2f} ms   "
            f"batched {row['batched_s'] * 1e3:7.2f} ms   "
            f"speedup {row['speedup']:6.1f}x   "
            f"identical: {row['identical']}"
        )

    results = []
    for num_nodes in args.sizes:
        row = bench_size(num_nodes, SUBGRID, rng)
        results.append(row)
        show(row)

    # At a fixed node count the advantage shrinks as subgrids grow: the
    # per-node loop is dominated by per-node interpreter dispatch, the
    # batched path by actual memory traffic.  Record the regime.
    subgrid_sweep = []
    largest = max(args.sizes)
    for subgrid in SUBGRID_SWEEP:
        row = bench_size(largest, subgrid, rng)
        subgrid_sweep.append(row)
        show(row)

    report = {
        "benchmark": "batched_executor",
        "pattern": PATTERN.name,
        "taps": len(PATTERN.taps),
        "subgrid": list(SUBGRID),
        "repeats": REPEATS,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "results": results,
        "subgrid_sweep": subgrid_sweep,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    for row in results + subgrid_sweep:
        where = (
            f"{row['num_nodes']} nodes, "
            f"{row['subgrid'][0]}x{row['subgrid'][1]} subgrids"
        )
        if not row["identical"]:
            failures.append(f"{where}: results differ")
        if row["speedup"] <= 1.0:
            failures.append(
                f"{where}: batched slower than per-node "
                f"({row['speedup']:.2f}x)"
            )
    for row in results:
        if (
            row["num_nodes"] >= 1024
            and row["speedup"] < REQUIRED_SPEEDUP_AT_1024
        ):
            failures.append(
                f"{row['num_nodes']} nodes: speedup {row['speedup']:.2f}x "
                f"below the {REQUIRED_SPEEDUP_AT_1024:.0f}x bar"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
