"""A1: the half-strip design choice (paper section 5.2).

The half-strip loop handles one boundary condition, so its microcode is
small enough that all four width routines fit instruction memory; the
price is starting the loop twice as often.  The ablation compares the
modeled cycle costs and checks both sides of the trade-off.
"""

import pytest

from conftest import emit, make_machine
from repro.compiler.plan import compile_pattern
from repro.machine.microcode import (
    MICROCODE_MEMORY_WORDS,
    full_strip_routine,
    half_strip_routine,
)
from repro.stencil.gallery import cross5


def strip_costs(subgrid_rows, params):
    """Cycles to process one strip of the given height, both designs."""
    compiled = compile_pattern(cross5(), params)
    plan = compiled.plans[8]
    half_routine = half_strip_routine(8, params)
    full_routine = full_strip_routine(8, params)
    lower = subgrid_rows - subgrid_rows // 2
    upper = subgrid_rows // 2
    half_cost = (
        2 * half_routine.dispatch_cycles
        + 2 * plan.prologue_cycles
        + (lower - 1 + upper - 1) * plan.steady_line_cycles
        + subgrid_rows * half_routine.line_overhead_cycles
    )
    full_cost = (
        full_routine.dispatch_cycles
        + plan.prologue_cycles
        + (subgrid_rows - 1) * plan.steady_line_cycles
        + subgrid_rows * full_routine.line_overhead_cycles
    )
    return half_cost, full_cost, half_routine, full_routine


def test_halfstrip_tradeoff(benchmark):
    params = make_machine(16).params

    def sweep():
        return {
            rows: strip_costs(rows, params)[:2] for rows in (16, 64, 256)
        }

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for rows, (half, full) in costs.items():
        overhead = (half - full) / full
        print(
            f"  strip height {rows:>3}: half-strips {half} cycles, "
            f"full strip {full} cycles ({overhead:+.1%})"
        )
        emit(benchmark, f"height {rows} half-strip overhead", round(overhead, 4))
        # The paper's admission: half-strips pay extra start-up overhead...
        assert half >= full
        # ...but it is "relatively small when operating on medium to
        # large arrays".
        if rows >= 64:
            assert overhead < 0.02


def test_fullstrip_routines_blow_microcode_memory(benchmark):
    """The other side of the trade-off: the full-strip routine set does
    not fit the sequencer's microcode instruction memory."""
    params = make_machine(16).params

    def footprints():
        half = sum(
            half_strip_routine(w, params).instruction_words
            for w in (8, 4, 2, 1)
        )
        full = sum(
            full_strip_routine(w, params).instruction_words
            for w in (8, 4, 2, 1)
        )
        return half, full

    half, full = benchmark.pedantic(footprints, rounds=1, iterations=1)
    emit(benchmark, "half-strip routine set words", half)
    emit(benchmark, "full-strip routine set words", full)
    emit(benchmark, "microcode memory words", MICROCODE_MEMORY_WORDS)
    assert half <= MICROCODE_MEMORY_WORDS
    assert full > MICROCODE_MEMORY_WORDS
