"""B2: the section 4 bottleneck accounting, made visible.

"The four bottlenecks that might obstruct this goal are interprocessor
communication, the floating-point unit, the instruction sequencer, and
the memory interface."  This bench decomposes a full iteration into
exactly those buckets for each stencil group and asserts the paper's
qualitative claims about each one.
"""

import pytest

from conftest import emit
from repro.analysis.breakdown import breakdown_run
from repro.analysis.sweeps import run_cell
from repro.stencil.gallery import cross5, cross9, diamond13, square9


def sweep(subgrid=(256, 256)):
    out = {}
    for pattern_fn in (cross5, square9, cross9, diamond13):
        pattern = pattern_fn()
        run = run_cell(pattern, subgrid, num_nodes=16)
        out[pattern.name] = (run, breakdown_run(run))
    return out


def test_bottleneck_breakdown(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for name, (run, breakdown) in results.items():
        shares = breakdown.shares()
        print(f"--- {name} ---")
        print(breakdown.describe())
        emit(
            benchmark,
            f"{name} useful-MA share",
            round(shares["useful multiply-adds"], 3),
        )
        # Exactness: the decomposition accounts for every compute cycle.
        assert breakdown.compute_total == run.compute_cycles
        # Section 4.1: for large problems communication is a small
        # fraction of the total work.
        assert shares["communication"] < 0.01
        # The memory interface (loads + stores) stays below the
        # arithmetic -- the multistencil's whole purpose.
        memory_share = shares["loads"] + shares["stores"]
        assert memory_share < shares["useful multiply-adds"]

    # Larger stencils spend proportionally more time in useful work.
    assert (
        results["diamond13"][1].shares()["useful multiply-adds"]
        > results["cross5"][1].shares()["useful multiply-adds"]
    )


def test_small_problem_shifts_to_overhead(benchmark):
    """At 64x64, the front end and sequencer shares grow at the expense
    of useful work -- the size dependence of the whole results table."""

    def pair():
        small_run = run_cell(cross9(), (64, 64), num_nodes=16)
        large_run = run_cell(cross9(), (256, 256), num_nodes=16)
        return breakdown_run(small_run), breakdown_run(large_run)

    small, large = benchmark.pedantic(pair, rounds=1, iterations=1)
    small_overhead = small.shares()["front end"]
    large_overhead = large.shares()["front end"]
    emit(benchmark, "64x64 front-end share", round(small_overhead, 3))
    emit(benchmark, "256x256 front-end share", round(large_overhead, 3))
    assert small_overhead > large_overhead
    assert (
        small.shares()["useful multiply-adds"]
        < large.shares()["useful multiply-adds"]
    )
