"""Guard the service's fault-containment machinery and its price.

Two properties, enforced with nonzero exit status:

1. **Supervision is (nearly) free.**  The fault-containment control
   plane -- service policy, the supervisor thread, deadline checks and
   circuit breakers -- running with zero injected faults must keep
   aggregate modeled throughput within 5% of ``multi_tenant_mflops``
   from BENCH_service.json (regenerated in-process when the file is
   absent).  Both sides of the comparison take the best of three runs:
   the modeled makespan depends on which partition each job lands on,
   and placement is decided by a live claim race, so single draws are
   noisy in both directions.  The fsync'd journal is *not* part of this
   gate -- durability costs one fsync per lifecycle event by design --
   but its wall-clock price is measured and reported alongside, as is
   the price of the opt-in ``RS_LOCKDEP=1`` lock instrumentation
   (whose observed acquisition graph is also cross-checked against the
   static lock graph).
2. **Chaos is survived.**  The reference service chaos campaign (seeds
   1-5: worker kills, job hangs, tenant storms, SIGKILL-and-resume)
   reports zero lost jobs, zero double runs, healthy tenants
   bit-identical to solo, and exact ledger reconciliation.

Run:  python benchmarks/bench_service_chaos.py
Writes BENCH_service_chaos.json at the repository root.
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.chaos import run_service_campaign  # noqa: E402
from repro.machine.params import MachineParams  # noqa: E402
from repro.service import (  # noqa: E402
    MachinePool,
    Scheduler,
    ServicePolicy,
)

from bench_service import NODES, build_jobs, run_service  # noqa: E402

MAX_OVERHEAD = 0.05
BEST_OF = 3
CHAOS_SEEDS = (1, 2, 3, 4, 5)


def run_supervised(jobs, params, journal_path=None):
    """The bench_service workload under the containment control plane."""
    policy = ServicePolicy(
        deadline_seconds=600.0,
        max_attempts=3,
        breaker_threshold=3,
        supervision_interval_seconds=0.005,
    )
    pool = MachinePool(params)
    with Scheduler(
        pool, service_policy=policy, journal_path=journal_path
    ) as scheduler:
        scheduler.submit_all(jobs)
        results = scheduler.drain(timeout=600)
    return results, scheduler.accounts


def best_run(label, runner, jobs, params):
    """Best aggregate modeled throughput (and its wall time) of N runs."""
    best_mflops, best_wall, best_accounts = 0.0, 0.0, None
    for _ in range(BEST_OF):
        start = time.perf_counter()
        _results, accounts = runner(jobs, params)
        wall = time.perf_counter() - start
        if accounts.aggregate_mflops > best_mflops:
            best_mflops = accounts.aggregate_mflops
            best_wall = wall
            best_accounts = accounts
    print(
        f"{label:13s}: {best_mflops:8.1f} Mflops modeled "
        f"(best of {BEST_OF}, {best_wall * 1e3:.0f} ms host)"
    )
    return best_mflops, best_wall, best_accounts


def baseline_mflops(path, jobs, params):
    """BENCH_service.json's aggregate throughput, or a fresh run's."""
    if path.exists():
        payload = json.loads(path.read_text())
        value = payload.get("multi_tenant_mflops")
        if isinstance(value, (int, float)) and value > 0:
            return float(value), "BENCH_service.json"
    mflops, _wall, _accounts = best_run("baseline", run_service, jobs, params)
    return mflops, "in-process baseline run"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    root = Path(__file__).resolve().parent.parent
    parser.add_argument(
        "--output", type=Path, default=root / "BENCH_service_chaos.json"
    )
    parser.add_argument(
        "--baseline", type=Path, default=root / "BENCH_service.json"
    )
    args = parser.parse_args(argv)

    params = MachineParams(num_nodes=NODES)
    jobs = build_jobs()

    base_mflops, base_source = baseline_mflops(args.baseline, jobs, params)
    print(f"baseline     : {base_mflops:8.1f} Mflops ({base_source})")

    supervised_mflops, supervised_wall, accounts = best_run(
        "supervised", run_supervised, jobs, params
    )
    overhead = (
        1.0 - supervised_mflops / base_mflops if base_mflops > 0 else 1.0
    )
    reconciled = accounts.reconcile()
    print(
        f"overhead     : {overhead * 100:+.2f}% modeled "
        f"(bar {MAX_OVERHEAD * 100:.0f}%)   "
        f"ledger {'reconciled' if reconciled else 'OUT OF BALANCE'}"
    )

    # The journal's durability price: same workload, fsync per event.
    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        _results, journal_accounts = run_supervised(
            jobs, params, str(Path(tmp) / "journal.jsonl")
        )
        journal_wall = time.perf_counter() - start
    journal_reconciled = journal_accounts.reconcile()
    print(
        f"journaled    : {journal_wall * 1e3:.0f} ms host with fsync'd "
        f"journal (vs {supervised_wall * 1e3:.0f} ms without; "
        f"informational, not gated)"
    )

    # The lockdep runtime's price: same workload with every
    # control-plane lock instrumented (RS_LOCKDEP=1).  Informational,
    # not gated -- the instrumentation is opt-in -- but the observed
    # acquisition graph must still be acyclic and explained by the
    # static lock graph.
    from repro.verify import lockdep, predicted_lock_graph

    saved_flag = os.environ.get(lockdep.ENV_FLAG)
    os.environ[lockdep.ENV_FLAG] = "1"
    lockdep.REGISTRY.reset()
    try:
        start = time.perf_counter()
        _results, lockdep_accounts = run_supervised(jobs, params)
        lockdep_wall = time.perf_counter() - start
    finally:
        if saved_flag is None:
            del os.environ[lockdep.ENV_FLAG]
        else:
            os.environ[lockdep.ENV_FLAG] = saved_flag
    lockdep_mflops = lockdep_accounts.aggregate_mflops
    lockdep_acquisitions = lockdep.REGISTRY.acquisitions()
    lockdep_locks = lockdep.REGISTRY.locks()
    lockdep_cycle = lockdep.REGISTRY.find_cycle()
    lockdep_unexplained = lockdep.REGISTRY.cross_check(predicted_lock_graph())
    lockdep_wall_ratio = (
        lockdep_wall / supervised_wall if supervised_wall > 0 else 0.0
    )
    lockdep.REGISTRY.reset()
    print(
        f"lockdep      : {lockdep_wall * 1e3:.0f} ms host with "
        f"RS_LOCKDEP=1 ({lockdep_wall_ratio:.2f}x the uninstrumented "
        f"run; {lockdep_acquisitions} acquisitions across "
        f"{len(lockdep_locks)} locks; informational, not gated)"
    )

    chaos_start = time.perf_counter()
    report = run_service_campaign(seeds=CHAOS_SEEDS)
    chaos_wall = time.perf_counter() - chaos_start
    print(report.describe())
    print(f"campaign     : {chaos_wall:.1f} s host")

    payload = {
        "benchmark": "service_chaos",
        "nodes": NODES,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "baseline_mflops": base_mflops,
        "baseline_source": base_source,
        "supervised_mflops": supervised_mflops,
        "supervision_overhead": overhead,
        "overhead_bar": MAX_OVERHEAD,
        "best_of": BEST_OF,
        "supervised_wall_seconds": supervised_wall,
        "supervised_reconciled": reconciled,
        "journal_wall_seconds": journal_wall,
        "journal_reconciled": journal_reconciled,
        "lockdep_wall_seconds": lockdep_wall,
        "lockdep_wall_ratio": lockdep_wall_ratio,
        "lockdep_mflops": lockdep_mflops,
        "lockdep_acquisitions": lockdep_acquisitions,
        "lockdep_locks": list(lockdep_locks),
        "lockdep_acyclic": lockdep_cycle is None,
        "lockdep_unexplained_edges": [list(e) for e in lockdep_unexplained],
        "chaos_seeds": list(CHAOS_SEEDS),
        "chaos_ok": report.ok,
        "chaos_wall_seconds": chaos_wall,
        "chaos_report": report.to_dict(),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    if overhead > MAX_OVERHEAD:
        failures.append(
            f"no-fault supervision overhead {overhead * 100:.2f}% "
            f"> {MAX_OVERHEAD * 100:.0f}% bar"
        )
    if not reconciled or not journal_reconciled:
        failures.append("supervised ledger does not reconcile")
    if not report.ok:
        failures.append("service chaos campaign did not survive: "
                        + report.describe())
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
