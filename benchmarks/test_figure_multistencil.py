"""F-MULTI: the section 5.3 multistencil figures.

* The width-8 multistencil of the 5-point cross spans 26 positions where
  the naive schedule performs 40 loads.
* The width-8 13-point diamond needs 48 registers (rejected); width 4
  needs 28 (accepted).
"""

import pytest

from conftest import emit
from repro.compiler.allocation import AllocationError, allocate
from repro.stencil.gallery import cross5, diamond13
from repro.stencil.multistencil import Multistencil


def build_all():
    return {
        ("cross5", 8): Multistencil(cross5(), 8),
        ("diamond13", 8): Multistencil(diamond13(), 8),
        ("diamond13", 4): Multistencil(diamond13(), 4),
    }


def test_multistencil_figures(benchmark):
    ms = benchmark.pedantic(build_all, rounds=1, iterations=1)
    print()
    print("width-8 cross5 multistencil:")
    print(ms[("cross5", 8)].pictogram())

    assert ms[("cross5", 8)].num_positions == 26
    assert ms[("cross5", 8)].naive_load_count() == 40
    emit(benchmark, "cross5 w8 positions (paper 26)", 26)
    emit(benchmark, "cross5 w8 naive loads (paper 40)", 40)
    emit(
        benchmark,
        "cross5 w8 load savings",
        round(ms[("cross5", 8)].load_savings(), 3),
    )

    assert ms[("diamond13", 8)].num_positions == 48
    assert ms[("diamond13", 4)].num_positions == 28
    emit(benchmark, "diamond13 w8 positions (paper 48)", 48)
    emit(benchmark, "diamond13 w4 positions (paper 28)", 28)


def test_register_file_verdicts(benchmark):
    """Width 8 of the diamond is rejected by allocation; width 4 fits."""

    def verdicts():
        out = {}
        try:
            allocate(diamond13(), 8)
            out[8] = "accepted"
        except AllocationError:
            out[8] = "rejected"
        alloc = allocate(diamond13(), 4)
        out[4] = alloc.data_registers
        return out

    result = benchmark.pedantic(verdicts, rounds=1, iterations=1)
    assert result[8] == "rejected"
    assert result[4] == 28
    emit(benchmark, "diamond13 width-8 verdict", result[8])
    emit(benchmark, "diamond13 width-4 data registers (paper 28)", result[4])
