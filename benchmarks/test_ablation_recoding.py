"""A5: the run-time library recoding (paper section 7).

"We found that the timings were quite sensitive to small changes in the
run-time library, because the microcode loops are so fast that the
front end computer is hard pressed to keep up.  Careful recoding of the
run-time support routines, including strength reduction to avoid
integer multiplications in the inner front-end loops, resulted in
further improvements."

The ablation runs the same stencil with and without the recoding
(MachineParams.host_overhead_recoded) and shows the effect is large for
small subgrids and shrinks as the microcode work grows.
"""

import pytest

from conftest import emit, make_machine, stencil_run
from repro.stencil.gallery import cross9

SUBGRIDS = [(64, 64), (128, 128), (256, 256)]


def sweep():
    out = {}
    for recoded in (True, False):
        for subgrid in SUBGRIDS:
            machine = make_machine(16, host_overhead_recoded=recoded)
            run = stencil_run(cross9(), subgrid, machine=machine)
            out[(recoded, subgrid)] = run.mflops
    return out


def test_recoding_ablation(benchmark):
    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    gains = {}
    for subgrid in SUBGRIDS:
        fast = rates[(True, subgrid)]
        slow = rates[(False, subgrid)]
        gain = fast / slow
        gains[subgrid] = gain
        emit(
            benchmark,
            f"{subgrid[0]}x{subgrid[1]} recoding gain",
            round(gain, 3),
        )
        # Recoding always helps...
        assert gain > 1.0
    # ...most for small subgrids, where the front end dominates.
    assert gains[(64, 64)] > gains[(128, 128)] > gains[(256, 256)]
    # And the effect is material, as the paper stresses.
    assert gains[(64, 64)] > 1.3
