"""A6: the hypercube embedding of the node grid (paper section 4.1).

"This grid is embedded within the hypercube topology in such a way that
grid neighbors are hypercube neighbors, thereby making effective use of
the network."  The ablation replaces the Gray-code embedding with naive
binary addresses: grid steps across power-of-two boundaries become
multi-hop routes that pile onto shared wires, and the exchange slows
down.
"""

import pytest

from conftest import emit, make_machine
from repro.machine.geometry import grid_shape
from repro.machine.router import (
    binary_embedding,
    exchange_route_cost,
    gray_embedding,
)


def sweep():
    out = {}
    for num_nodes in (16, 64, 256, 2048):
        params = make_machine(num_nodes).params
        for name, embedding in (
            ("gray", gray_embedding),
            ("binary", binary_embedding),
        ):
            out[(num_nodes, name)] = exchange_route_cost(
                params, (64, 64), pad=1, embedding=embedding
            )
    return out


def test_embedding_ablation(benchmark):
    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for num_nodes in (16, 64, 256, 2048):
        gray = costs[(num_nodes, "gray")]
        binary = costs[(num_nodes, "binary")]
        slowdown = binary.busiest_wire_words / gray.busiest_wire_words
        emit(
            benchmark,
            f"{num_nodes} nodes: binary/gray wire-load ratio",
            round(slowdown, 2),
        )
        # The production embedding is always single-hop...
        assert gray.max_hops == 1
        # ...the naive one is not, and its congestion grows with size.
        assert binary.max_hops > 1
        assert slowdown > 1.5
    # More machine, more boundary crossings, worse naive congestion.
    small = costs[(16, "binary")].busiest_wire_words
    large = costs[(2048, "binary")].busiest_wire_words
    assert large >= small
