"""CAL: the shape claims do not depend on the calibration.

Four overhead constants are calibrated against the paper's table (see
EXPERIMENTS.md).  The reproduction's *conclusions*, however, are shape
claims -- who wins, what rises with what -- and those must hold across a
wide range of the calibrated constants, or they would be artifacts of
the tuning.  This bench re-runs the key claims with every overhead
halved and doubled.
"""

import pytest

from conftest import emit, make_machine, stencil_run
from repro.stencil.gallery import cross5, diamond13, square9

VARIANTS = {
    "calibrated": {},
    "light overheads": {
        "sequencer_line_overhead": 20,
        "half_strip_dispatch_cycles": 30,
        "host_per_halfstrip_s": 75e-6,
        "host_call_overhead_s": 150e-6,
    },
    "heavy overheads": {
        "sequencer_line_overhead": 80,
        "half_strip_dispatch_cycles": 120,
        "host_per_halfstrip_s": 300e-6,
        "host_call_overhead_s": 600e-6,
    },
}


def sweep():
    out = {}
    for variant, overrides in VARIANTS.items():
        for pattern_fn in (cross5, square9, diamond13):
            pattern = pattern_fn()
            for subgrid in ((64, 64), (256, 256)):
                machine = make_machine(16, **overrides)
                run = stencil_run(pattern, subgrid, machine=machine)
                out[(variant, pattern.name, subgrid)] = run.mflops
    return out


def test_shape_claims_survive_recalibration(benchmark):
    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for variant in VARIANTS:
        big = {
            name: rates[(variant, name, (256, 256))]
            for name in ("cross5", "square9", "diamond13")
        }
        small = {
            name: rates[(variant, name, (64, 64))]
            for name in ("cross5", "square9", "diamond13")
        }
        emit(
            benchmark,
            f"{variant}: 256x256 Mflops (cross5/square9/diamond13)",
            "/".join(f"{big[n]:.0f}" for n in ("cross5", "square9", "diamond13")),
        )
        # Claim 1: rates rise with subgrid size, always.
        for name in big:
            assert big[name] > small[name], (variant, name)
        # Claim 2: the 5-point cross is the slowest group, always.
        assert big["cross5"] < min(big["square9"], big["diamond13"])
        assert small["cross5"] < min(small["square9"], small["diamond13"])
        # Claim 3: big stencils sustain a sizable fraction of the
        # 224-Mflops 16-node peak, always.
        assert big["square9"] > 0.25 * 224.0

    # The calibration matters for absolutes (the variants really differ)...
    assert (
        rates[("light overheads", "cross5", (256, 256))]
        > 1.2 * rates[("heavy overheads", "cross5", (256, 256))]
    )
    # ...but not for any conclusion asserted above.
