"""F-RING: the section 5.4 ring-buffer figures.

The width-4 13-point diamond's columns get ring buffers of sizes
1,3,5,5,5,5,3,1; the register access pattern unrolls by LCM(5,3,1) = 15.
The cross5 width-8 pattern rotates through three copies ("because there
are three rows in the multistencil").
"""

import pytest

from conftest import emit
from repro.compiler.allocation import allocate
from repro.compiler.plan import compile_pattern
from repro.stencil.gallery import cross5, diamond13


def build():
    return {
        "diamond13": allocate(diamond13(), 4),
        "cross5": allocate(cross5(), 8),
        "compiled_diamond13": compile_pattern(diamond13()),
    }


def test_ring_buffer_figures(benchmark):
    result = benchmark.pedantic(build, rounds=1, iterations=1)
    diamond = result["diamond13"]
    print()
    print(f"diamond13 width 4: {diamond.describe()}")
    assert diamond.ring_sizes() == (1, 3, 5, 5, 5, 5, 3, 1)
    assert diamond.unroll == 15
    emit(benchmark, "diamond13 w4 ring sizes (paper 1,3,5,5,5,5,3,1)",
         str(diamond.ring_sizes()))
    emit(benchmark, "diamond13 w4 unroll (paper LCM=15)", diamond.unroll)

    cross = result["cross5"]
    assert cross.unroll == 3
    emit(benchmark, "cross5 w8 unroll (paper 3)", cross.unroll)


def test_unrolled_patterns_in_scratch_memory(benchmark):
    """The compiler materializes one register access pattern per phase --
    15 copies for the diamond -- and the total fits scratch memory."""
    compiled = benchmark.pedantic(
        lambda: compile_pattern(diamond13()), rounds=1, iterations=1
    )
    plan = compiled.plans[4]
    assert len(plan.steady) == 15
    assert plan.scratch_words <= compiled.params.scratch_memory_words
    # Successive phases really do use different register patterns...
    first = [op for op in plan.steady[0].ops]
    second = [op for op in plan.steady[1].ops]
    assert first != second
    # ...and the rotation closes after exactly the LCM.
    assert plan.pattern_for_line(1).phase == plan.pattern_for_line(16).phase
    emit(benchmark, "unrolled pattern copies", len(plan.steady))
    emit(benchmark, "scratch words", plan.scratch_words)
