"""EXT-3D: the run-time library's multidimensional outer loop, measured.

The paper's run-time library "provides the outer loop structure for
strip-mining and for handling multidimensional arrays" (section 1).
The bench runs the 7-point 3-D Laplacian plane by plane and checks the
outer loop's cost structure: linear in depth, and cheaper with the
depth taps fused into the microcode loop than with separate
elementwise passes per plane.
"""

import numpy as np
import pytest

from conftest import emit, make_machine
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.elementwise import add_scaled
from repro.runtime.multidim import (
    CMArray3D,
    DepthTap,
    apply_stencil_3d,
    compile_3d,
)
from repro.stencil.pattern import Coefficient, StencilPattern, Tap

LAM = 0.1


def laplacian_parts():
    offsets = [(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)]
    taps = [
        Tap(
            offset=o,
            coeff=Coefficient.scalar(LAM if o != (0, 0) else 1 - 6 * LAM),
        )
        for o in offsets
    ]
    pattern = StencilPattern(taps, name="lap7_inplane")
    depth = [
        DepthTap(-1, Coefficient.scalar(LAM)),
        DepthTap(+1, Coefficient.scalar(LAM)),
    ]
    return pattern, depth


def test_outer_loop_scales_linearly_in_depth(benchmark):
    def sweep():
        machine = make_machine(16)
        pattern, depth_taps = laplacian_parts()
        compiled = compile_3d(pattern, depth_taps, machine.params)
        out = {}
        for depth in (4, 8, 16):
            source = CMArray3D("X", machine, (64, 64, depth))
            run = apply_stencil_3d(
                compiled, source, {}, f"R{depth}", depth_taps=depth_taps
            )
            out[depth] = run
        return out

    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for depth, run in runs.items():
        emit(benchmark, f"depth {depth} compute cycles", run.compute_cycles)
    assert runs[8].compute_cycles == 2 * runs[4].compute_cycles
    assert runs[16].compute_cycles == 4 * runs[4].compute_cycles
    assert runs[16].useful_flops == 4 * runs[4].useful_flops


def _compare_at(global_plane, depth=4, separate_widths=(8, 4, 2, 1)):
    """(fused seconds, separate-pass seconds) per 3-D apply."""
    from repro.compiler.plan import compile_pattern

    pattern, depth_taps = laplacian_parts()

    machine = make_machine(16)
    fused_compiled = compile_3d(pattern, depth_taps, machine.params)
    source = CMArray3D("X", machine, (*global_plane, depth))
    fused = apply_stencil_3d(
        fused_compiled, source, {}, "RF", depth_taps=depth_taps
    )
    fused_seconds = fused.elapsed_seconds

    machine2 = make_machine(16)
    params = machine2.params
    plain_compiled = compile_pattern(pattern, params, widths=separate_widths)
    source2 = CMArray3D("X", machine2, (*global_plane, depth))
    plain = apply_stencil_3d(plain_compiled, source2, {}, "RP")
    lam_page = CMArray.from_numpy(
        "LAMPAGE",
        machine2,
        np.full(global_plane, LAM, dtype=np.float32),
    )
    separate_seconds = plain.elapsed_seconds
    result3 = CMArray3D("RSEP", machine2, (*global_plane, depth))
    for k in range(depth):
        for dz in (-1, +1):
            term = add_scaled(
                result3.slab(k),
                result3.slab(k),
                lam_page,
                source2.slab((k + dz) % depth),
                params,
            )
            separate_seconds += term.seconds(params)
    return fused_seconds, separate_seconds


def test_fusion_width_matched_always_wins(benchmark):
    """With the strip width held equal, fusing the depth taps into the
    multiply-add chains beats separate read-modify-write passes by
    ~1.2x at every size: the pure pass-elimination effect."""

    def sweep():
        out = {}
        for label, plane in (
            ("16x16 subgrids", (64, 64)),
            ("64x64 subgrids", (256, 256)),
        ):
            fused, _ = _compare_at(plane)
            _, separate_w4 = _compare_at(plane, separate_widths=(4, 2, 1))
            out[label] = separate_w4 / fused
        return out

    advantages = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for label, advantage in advantages.items():
        emit(benchmark, f"{label} width-matched advantage", round(advantage, 2))
        assert advantage > 1.15


def test_fusion_crossover_against_best_width(benchmark):
    """Against the *unfused* compilation at its best width (8), fusion
    pays a real price: the two extra registers per result cost this
    pattern its width-8 plan.  At small subgrids the halved width loses;
    at production subgrids the eliminated passes win anyway -- the same
    register economy that governs the rest of the compiler."""

    def sweep():
        return {
            "small (16x16 subgrids)": _compare_at((64, 64)),
            "large (256x256 subgrids)": _compare_at((1024, 1024)),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    advantages = {}
    for label, (fused_seconds, separate_seconds) in results.items():
        advantage = separate_seconds / fused_seconds
        advantages[label] = advantage
        emit(benchmark, f"{label} fusion advantage", round(advantage, 3))
    assert advantages["small (16x16 subgrids)"] < 1.0
    assert advantages["large (256x256 subgrids)"] > 1.0
