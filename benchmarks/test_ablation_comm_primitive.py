"""A8: the new four-neighbor primitive vs the old one-direction-at-a-time
grid communication (paper section 4.1).

"Previous CM-2 grid primitives ... allow every processor in parallel to
pass a single datum to a single neighbor, all in the same direction.
... The new primitive organizes nodes, not processors, into a
two-dimensional grid, and allows each node to pass data to all four
neighbors simultaneously."
"""

import pytest

from conftest import emit, make_machine
from repro.runtime.halo import exchange_cost, legacy_exchange_cost
from repro.stencil.gallery import cross5, cross9, diamond13


def sweep():
    params = make_machine(16).params
    out = {}
    for pattern_fn in (cross5, cross9, diamond13):
        pattern = pattern_fn()
        for subgrid in ((64, 64), (256, 256)):
            new = exchange_cost(pattern, subgrid, params)
            old = legacy_exchange_cost(pattern, subgrid, params)
            out[(pattern.name, subgrid)] = (new.cycles, old.cycles)
    return out


def test_new_primitive_beats_old(benchmark):
    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for (name, subgrid), (new, old) in costs.items():
        speedup = old / new
        emit(
            benchmark,
            f"{name} {subgrid[0]}x{subgrid[1]} comm speedup",
            round(speedup, 2),
        )
        # The simultaneous exchange always wins...
        assert new < old
        # ...and by more for wider halos (each extra halo row/column is
        # another sequential primitive call the old way).
    cross5_speedup = costs[("cross5", (64, 64))][1] / costs[("cross5", (64, 64))][0]
    cross9_speedup = costs[("cross9", (64, 64))][1] / costs[("cross9", (64, 64))][0]
    assert cross9_speedup > cross5_speedup


def test_comm_share_with_old_primitive(benchmark):
    """With the old primitive, communication would no longer be 'a
    relatively small fraction' at small subgrids -- part of why the new
    primitive was worth microcoding."""

    def shares():
        from repro.analysis.sweeps import run_cell
        from repro.stencil.gallery import cross9

        params = make_machine(16).params
        run = run_cell(cross9(), (64, 64), num_nodes=16)
        old = legacy_exchange_cost(cross9(), (64, 64), params)
        new_share = run.comm.cycles / (run.compute_cycles + run.comm.cycles)
        old_share = old.cycles / (run.compute_cycles + old.cycles)
        return new_share, old_share

    new_share, old_share = benchmark.pedantic(shares, rounds=1, iterations=1)
    print()
    emit(benchmark, "new primitive comm share", round(new_share, 4))
    emit(benchmark, "old primitive comm share", round(old_share, 4))
    assert old_share > 3 * new_share
