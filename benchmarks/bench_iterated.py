"""Measure temporally blocked iterated runs against the unblocked path.

Runs ``apply_stencil(iterations=k)`` blocked and unblocked across
gallery stencils and block depths, verifying bit-identical results for
every cell, and reports the modeled CM-2 cost of both paths: exchange
count, communication cycles, and elapsed time, plus the host wall clock
of the simulator itself.

Temporal blocking amortizes what the run-time library's up-front halo
exchange exists to amortize -- per-call latency.  One ``T * pad``-deep
exchange replaces ``T`` shallow ones, so the communication bill drops
toward ``1/T`` (the acceptance bar is 2x at 1,024 nodes for depth-4
blocking); the price is redundant compute in the shrinking ghost ring,
so *elapsed* time only improves where per-call costs dominate that ring
-- small subgrids, the machine-balance regime the paper's Gordon Bell
runs lived in.  The headline configuration pins that regime; the
subgrid sweep records the trade across the range honestly.

Run:  python benchmarks/bench_iterated.py
Writes BENCH_iterated_fusion.json at the repository root and exits
nonzero if any cell loses bit-identity, the depth-4 communication
speedup falls under 2x, or blocked runs are slower (modeled elapsed)
than unblocked at any depth >= 2 in the headline configuration.
"""

import argparse
import json
import math
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compiler.driver import compile_stencil  # noqa: E402
from repro.machine.machine import CM2  # noqa: E402
from repro.machine.params import MachineParams  # noqa: E402
from repro.runtime.cm_array import CMArray  # noqa: E402
from repro.runtime.stencil_op import apply_stencil  # noqa: E402
from repro.stencil.gallery import cross, square  # noqa: E402

NUM_NODES = 1024
ITERATIONS = 192  # long enough to amortize the coefficient deep halos
DEPTHS = (2, 3, 4)
#: The amortization regime: subgrids small enough that per-call costs
#: rival the ghost ring's redundant compute.
HEADLINE_SUBGRID = (6, 6)
HEADLINE_PATTERNS = (cross(1), square(1))
SUBGRID_SWEEP = ((4, 4), (8, 8), (16, 16))
REQUIRED_COMM_SPEEDUP_AT_DEPTH4 = 2.0
REPEATS = 2


def make_problem(pattern, num_nodes, subgrid, rng):
    params = MachineParams(num_nodes=num_nodes)
    machine = CM2(params)
    grid_rows, grid_cols = machine.shape
    shape = (grid_rows * subgrid[0], grid_cols * subgrid[1])
    compiled = compile_stencil(pattern, params)
    # Weights sum to ~1 so long runs stay in normal float32 range;
    # denormals would distort the wall-clock numbers in both modes.
    k = max(1, len(pattern.coefficient_names()))
    x = CMArray.from_numpy(
        "X", machine, rng.uniform(0.5, 1.5, shape).astype(np.float32)
    )
    coeffs = {
        name: CMArray.from_numpy(
            name,
            machine,
            rng.uniform(0.8 / k, 1.2 / k, shape).astype(np.float32),
        )
        for name in pattern.coefficient_names()
    }
    result = CMArray("R", machine, shape)
    return compiled, x, coeffs, result


def time_depth(compiled, x, coeffs, result, depth, repeats=REPEATS):
    best = float("inf")
    run = None
    for _ in range(repeats):
        start = time.perf_counter()
        run = apply_stencil(
            compiled, x, coeffs, result,
            iterations=ITERATIONS, block_depth=depth,
        )
        best = min(best, time.perf_counter() - start)
    return best, run


def bench_cell(pattern, num_nodes, subgrid, depth, rng):
    compiled, x, coeffs, result = make_problem(
        pattern, num_nodes, subgrid, rng
    )
    # Warm up (scratch allocation, plan compilation), then measure.
    time_depth(compiled, x, coeffs, result, 1, repeats=1)
    time_depth(compiled, x, coeffs, result, depth, repeats=1)

    wall_unblocked, unblocked = time_depth(compiled, x, coeffs, result, 1)
    reference_bits = unblocked.result.to_numpy().copy()
    wall_blocked, blocked = time_depth(compiled, x, coeffs, result, depth)
    identical = bool(
        np.array_equal(blocked.result.to_numpy(), reference_bits)
    )
    return {
        "pattern": pattern.name,
        "num_nodes": num_nodes,
        "subgrid": list(subgrid),
        "iterations": ITERATIONS,
        "depth_requested": depth,
        "depth_used": blocked.block_depth,
        "exchanges_unblocked": unblocked.exchanges,
        "exchanges_blocked": blocked.exchanges,
        "coeff_exchanges": blocked.coeff_exchanges,
        "comm_cycles_unblocked": unblocked.comm_cycles_total,
        "comm_cycles_blocked": blocked.comm_cycles_total,
        "comm_speedup": (
            unblocked.comm_cycles_total / blocked.comm_cycles_total
        ),
        "elapsed_unblocked_s": unblocked.elapsed_seconds,
        "elapsed_blocked_s": blocked.elapsed_seconds,
        "elapsed_speedup": (
            unblocked.elapsed_seconds / blocked.elapsed_seconds
        ),
        "wall_unblocked_s": wall_unblocked,
        "wall_blocked_s": wall_blocked,
        "identical": identical,
    }


def show(row):
    print(
        f"{row['pattern']:<10} {row['subgrid'][0]:>2}x{row['subgrid'][1]:<3}"
        f" T={row['depth_used']}  "
        f"exchanges {row['exchanges_unblocked']:>3} -> "
        f"{row['exchanges_blocked']:>3}  "
        f"comm {row['comm_speedup']:4.2f}x  "
        f"elapsed {row['elapsed_speedup']:4.2f}x  "
        f"identical: {row['identical']}"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--nodes", type=int, default=NUM_NODES,
        help="machine size (node count) to measure",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_iterated_fusion.json",
    )
    args = parser.parse_args(argv)

    rng = np.random.default_rng(1991)

    headline = []
    for pattern in HEADLINE_PATTERNS:
        for depth in DEPTHS:
            row = bench_cell(pattern, args.nodes, HEADLINE_SUBGRID, depth, rng)
            headline.append(row)
            show(row)

    # The regime sweep: where the ghost ring's redundant compute beats
    # the per-call savings, the elapsed ratio honestly drops under 1.
    sweep = []
    for subgrid in SUBGRID_SWEEP:
        row = bench_cell(cross(1), args.nodes, subgrid, 4, rng)
        sweep.append(row)
        show(row)

    report = {
        "benchmark": "iterated_fusion",
        "num_nodes": args.nodes,
        "iterations": ITERATIONS,
        "headline_subgrid": list(HEADLINE_SUBGRID),
        "repeats": REPEATS,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "headline": headline,
        "subgrid_sweep": sweep,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    for row in headline + sweep:
        where = (
            f"{row['pattern']} {row['subgrid'][0]}x{row['subgrid'][1]} "
            f"T={row['depth_used']}"
        )
        if not row["identical"]:
            failures.append(f"{where}: blocked result differs")
        expected = math.ceil(row["iterations"] / row["depth_used"])
        if row["exchanges_blocked"] != expected:
            failures.append(
                f"{where}: {row['exchanges_blocked']} exchanges, "
                f"expected ceil(k/T) = {expected}"
            )
    for row in headline:
        where = (
            f"{row['pattern']} {row['subgrid'][0]}x{row['subgrid'][1]} "
            f"T={row['depth_used']}"
        )
        if row["depth_used"] >= 2 and row["elapsed_speedup"] < 1.0:
            failures.append(
                f"{where}: blocked slower than unblocked "
                f"({row['elapsed_speedup']:.2f}x elapsed)"
            )
        if (
            row["depth_used"] == 4
            and row["comm_speedup"] < REQUIRED_COMM_SPEEDUP_AT_DEPTH4
        ):
            failures.append(
                f"{where}: comm speedup {row['comm_speedup']:.2f}x below "
                f"the {REQUIRED_COMM_SPEEDUP_AT_DEPTH4:.0f}x bar"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
