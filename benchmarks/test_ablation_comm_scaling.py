"""A4: communication share vs problem size (paper section 4.1).

"For two-dimensional grids on fixed hardware, the cost of communication
grows as the square root of the number of flops to be performed, so for
sufficiently large problems the communications overhead will be a
relatively small fraction of the total work."
"""

import pytest

from conftest import emit, make_machine, stencil_run
from repro.stencil.gallery import cross9

SUBGRIDS = [(16, 16), (32, 32), (64, 64), (128, 128), (256, 256)]


def sweep():
    out = {}
    for subgrid in SUBGRIDS:
        run = stencil_run(cross9(), subgrid, machine=make_machine(16))
        out[subgrid] = {
            "comm": run.comm.cycles,
            "compute": run.compute_cycles,
            "share": run.comm.cycles / (run.compute_cycles + run.comm.cycles),
        }
    return out


def test_comm_share_shrinks_with_problem_size(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    shares = []
    for subgrid in SUBGRIDS:
        share = results[subgrid]["share"]
        shares.append(share)
        emit(
            benchmark,
            f"{subgrid[0]}x{subgrid[1]} comm share",
            round(share, 4),
        )
    # Monotonically shrinking share.
    assert shares == sorted(shares, reverse=True)
    # The square-root law: quadrupling the points doubles comm but
    # quadruples compute, so the variable part of the comm/compute ratio
    # halves.  Check the asymptotic trend between the two largest sizes.
    big, huge = results[(128, 128)], results[(256, 256)]
    ratio_big = big["comm"] / big["compute"]
    ratio_huge = huge["comm"] / huge["compute"]
    assert ratio_huge < ratio_big
    assert ratio_huge > ratio_big / 4  # slower than linear collapse
    # For the paper's production sizes the share is small.
    assert results[(256, 256)]["share"] < 0.01


def test_comm_cost_tracks_longer_side(benchmark):
    """Doubling only one side doubles comm, quadrupling neither."""

    def pair():
        square = stencil_run(cross9(), (64, 64), machine=make_machine(16))
        wide = stencil_run(cross9(), (64, 128), machine=make_machine(16))
        return square.comm, wide.comm

    square, wide = benchmark.pedantic(pair, rounds=1, iterations=1)
    params = make_machine(16).params
    variable_square = square.cycles - params.comm_startup_cycles
    variable_wide = wide.cycles - params.comm_startup_cycles
    assert variable_wide == 2 * variable_square
    emit(benchmark, "64x64 comm cycles", square.cycles)
    emit(benchmark, "64x128 comm cycles", wide.cycles)
