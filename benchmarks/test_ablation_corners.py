"""A3: the corner-exchange skip (paper section 5.1).

"For some common stencil patterns, such as [the cross], the third step
may be omitted ... the test is very easy and quick and does save a
noticeable amount of time for smaller arrays."
"""

import pytest

from conftest import emit, make_machine
from repro.runtime.halo import exchange_cost
from repro.stencil.gallery import cross5, cross9, diamond13, square9


def sweep():
    params = make_machine(16).params
    out = {}
    for pattern_fn in (cross5, cross9, square9, diamond13):
        pattern = pattern_fn()
        for subgrid in ((32, 32), (64, 64), (256, 256)):
            out[(pattern.name, subgrid)] = exchange_cost(
                pattern, subgrid, params
            )
    return out


def test_corner_skip(benchmark):
    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    # Crosses skip the corner step; squares and diamonds cannot.
    for subgrid in ((32, 32), (64, 64), (256, 256)):
        assert costs[("cross5", subgrid)].corner_step_skipped
        assert costs[("cross9", subgrid)].corner_step_skipped
        assert not costs[("square9", subgrid)].corner_step_skipped
        assert not costs[("diamond13", subgrid)].corner_step_skipped

    # The saving is noticeable for small arrays, negligible for large.
    for size, floor, ceil in (((32, 32), 0.15, 1.0), ((256, 256), 0.0, 0.15)):
        skipped = costs[("cross9", size)].cycles
        # A same-pad pattern that cannot skip:
        paid = costs[("diamond13", size)].cycles
        saving = (paid - skipped) / paid
        emit(
            benchmark,
            f"corner-step share of comm at {size[0]}x{size[1]}",
            round(saving, 3),
        )
        assert floor <= saving < ceil

    # Absolute comm time is proportional to pad x longer side, so the
    # large-array absolute saving equals the small-array one (startup)
    # while the relative saving collapses.
    small_gain = (
        costs[("diamond13", (32, 32))].cycles
        - costs[("cross9", (32, 32))].cycles
    )
    large_gain = (
        costs[("diamond13", (256, 256))].cycles
        - costs[("cross9", (256, 256))].cycles
    )
    assert small_gain == large_gain
    emit(benchmark, "corner-step absolute cycles", small_gain)
