"""A7: ring-size strategy — the paper's heuristic vs the clever one.

Section 5.4 closes: "This approach tends to minimize the LCM, at least
for the column heights typically encountered (less than 10).  In the
general case even more clever strategies may be required."  The
LCM-minimizing dynamic program is that strategy; the ablation confirms
both halves of the sentence: on every pattern the paper displays the
heuristic is already optimal, and on general column-height mixes the
clever strategy wins real scratch memory.
"""

import pytest

from conftest import emit
from repro.compiler.plan import compile_pattern
from repro.compiler.ringbuf import (
    lcm_of,
    plan_ring_sizes,
    plan_ring_sizes_optimal,
)
from repro.stencil.gallery import cross5, cross9, diamond13, square9
from repro.stencil.multistencil import ColumnProfile


def paper_patterns():
    out = {}
    for pattern_fn in (cross5, cross9, square9, diamond13):
        pattern = pattern_fn()
        paper = compile_pattern(pattern, strategy="paper")
        optimal = compile_pattern(pattern, strategy="optimal")
        out[pattern.name] = (paper, optimal)
    return out


def test_paper_heuristic_is_optimal_on_displayed_patterns(benchmark):
    results = benchmark.pedantic(paper_patterns, rounds=1, iterations=1)
    print()
    for name, (paper, optimal) in results.items():
        for width in paper.widths:
            heuristic_unroll = paper.plans[width].unroll
            optimal_unroll = optimal.plans[width].unroll
            assert heuristic_unroll == optimal_unroll, (
                f"{name} width {width}"
            )
        emit(
            benchmark,
            f"{name} max-width unroll (both strategies)",
            paper.plans[paper.max_width].unroll,
        )


def test_general_case_needs_the_clever_strategy(benchmark):
    """Mixed column heights under pressure: the heuristic's LCM blows
    up; padding rings to compatible periods contains it."""

    def sweep():
        cases = {
            "heights 2,3,5 budget 12": ([2, 3, 5], 12),
            "heights 3,4,5 budget 14": ([3, 4, 5], 14),
            "heights 2,3,4,6 budget 18": ([2, 3, 4, 6], 18),
        }
        out = {}
        for label, (heights, budget) in cases.items():
            cols = [
                ColumnProfile(x=i, rows=tuple(range(h)))
                for i, h in enumerate(heights)
            ]
            heuristic = plan_ring_sizes(cols, budget)
            optimal = plan_ring_sizes_optimal(cols, budget)
            out[label] = (lcm_of(heuristic), lcm_of(optimal))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    any_win = False
    for label, (heuristic_lcm, optimal_lcm) in results.items():
        emit(
            benchmark,
            f"{label}: heuristic vs optimal LCM",
            f"{heuristic_lcm} vs {optimal_lcm}",
        )
        assert optimal_lcm <= heuristic_lcm
        if optimal_lcm < heuristic_lcm:
            any_win = True
    assert any_win  # the general case really does need it
